"""Peer node state: neighbour set, observed session times, availability.

Implements the node-local part of §2.3 ("Availability of neighbors"):

- when a peer joins, it initialises the observed session time of each
  neighbour to 0;
- at each probing period ``T`` a live neighbour's counter grows by ``T``;
- a newly discovered neighbour starts at ``rand(0, T)``;
- availability of neighbour ``u`` is the *normalised* counter
  ``alpha(u) = t_s(u) / sum_v t_s(v)``.

The normalisation is the routing hot path's per-candidate cost: edge
scoring consults ``alpha`` for every candidate of every hop, and a naive
implementation re-sums the whole neighbour set each time (O(d) per
lookup, O(d^2) per decision).  :class:`PeerNode` therefore caches the
normalised vector and invalidates it with a dirty flag whenever a
counter or the neighbour set changes; every mutation path — probe
credits, direct ``session_time`` assignment, neighbour add/remove/reset
— funnels through the invalidation, so the cache can never go stale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.sim.monitoring import PERF


class NodeState(enum.Enum):
    """Lifecycle state of a peer."""

    ONLINE = "online"
    OFFLINE = "offline"  # between sessions; may come back
    DEPARTED = "departed"  # left the system for good


class NeighborView:
    """What a node knows about one neighbour.

    ``session_time`` is a property so that *any* write — including direct
    assignment from tests or external estimators — notifies the owning
    :class:`PeerNode` to invalidate its cached availability
    normalisation.
    """

    __slots__ = ("node_id", "last_seen", "_session_time", "_on_change")

    def __init__(
        self,
        node_id: int,
        session_time: float = 0.0,
        last_seen: Optional[float] = None,
    ):
        self.node_id = node_id
        #: Simulation time of the last successful probe (None = never probed).
        self.last_seen = last_seen
        self._on_change: Optional[Callable[[], None]] = None
        if session_time < 0:
            raise ValueError(f"negative session_time {session_time}")
        self._session_time = session_time

    @property
    def session_time(self) -> float:
        """Observed cumulative session time (probing counter), minutes."""
        return self._session_time

    @session_time.setter
    def session_time(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative session_time {value}")
        self._session_time = value
        if self._on_change is not None:
            self._on_change()

    def __repr__(self) -> str:
        return (
            f"NeighborView(node_id={self.node_id}, "
            f"session_time={self._session_time}, last_seen={self.last_seen})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, NeighborView):
            return NotImplemented
        return (
            self.node_id == other.node_id
            and self._session_time == other._session_time
            and self.last_seen == other.last_seen
        )


@dataclass
class PeerNode:
    """A peer in the anonymity overlay.

    The node is deliberately *passive*: routing strategies, probers and the
    churn process act on it.  It owns only local knowledge — its neighbour
    set and the observed availability counters.
    """

    node_id: int
    #: Target neighbour-set size ``d`` (paper default 5).
    degree: int = 5
    state: NodeState = NodeState.OFFLINE
    #: True if the node is an adversary (routes randomly; see §2.4).
    malicious: bool = False
    #: Per-session participation cost ``C^p``.
    participation_cost: float = 1.0
    neighbors: Dict[int, NeighborView] = field(default_factory=dict)
    #: --- true availability bookkeeping (ground truth, not node knowledge)
    first_join_time: Optional[float] = None
    final_departure_time: Optional[float] = None
    total_session_time: float = 0.0
    _session_start: Optional[float] = None
    #: --- availability cache (see module docstring) ---------------------
    _avail_dirty: bool = field(default=True, repr=False)
    _avail_vector: Dict[int, float] = field(default_factory=dict, repr=False)
    #: Monotonic change counters consumed by array-backed views
    #: (:class:`repro.core.kernels.WorldArrays`): ``availability_version``
    #: advances on *any* invalidation (probe credits, direct counter
    #: writes, neighbour-set changes); ``neighbors_version`` advances only
    #: when the neighbour *set* itself changes.  Observers compare a
    #: remembered version against the current one to decide whether their
    #: derived arrays are stale — the versions never wrap or reset.
    availability_version: int = field(default=0, repr=False)
    neighbors_version: int = field(default=0, repr=False)
    #: Optional push notification for neighbour-*set* changes, fired on
    #: every ``neighbors_version`` bump.  :class:`repro.network.overlay.
    #: Overlay` wires this to its aggregate ``topology_version`` so
    #: array-backed views can answer "did any neighbour set change?" in
    #: O(1) instead of scanning every node's ``neighbors_version``.
    _topology_listener: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    #: This thread's plain counter instance, bound once at construction —
    #: ``availability_vector`` sits on the edge-scoring hot path and must
    #: not pay the ``PERF`` facade's thread-local indirection per call.
    _perf: object = field(
        default_factory=lambda: PERF.counters, repr=False, compare=False
    )

    def __post_init__(self):
        # Views supplied at construction time must notify this node's
        # availability cache like internally created ones.
        for view in self.neighbors.values():
            self._adopt_view(view)

    # -- lifecycle -------------------------------------------------------
    @property
    def is_online(self) -> bool:
        return self.state is NodeState.ONLINE

    def go_online(self, now: float) -> None:
        """Start a session at time ``now``."""
        if self.state is NodeState.DEPARTED:
            raise RuntimeError(f"node {self.node_id} departed; cannot rejoin")
        if self.state is NodeState.ONLINE:
            raise RuntimeError(f"node {self.node_id} already online")
        self.state = NodeState.ONLINE
        self._session_start = now
        if self.first_join_time is None:
            self.first_join_time = now

    def go_offline(self, now: float) -> None:
        """End the current session at time ``now``."""
        if self.state is not NodeState.ONLINE:
            raise RuntimeError(f"node {self.node_id} is not online")
        assert self._session_start is not None
        if now < self._session_start:
            raise ValueError("session cannot end before it started")
        self.total_session_time += now - self._session_start
        self._session_start = None
        self.state = NodeState.OFFLINE

    def depart(self, now: float) -> None:
        """Leave the system permanently (final departure)."""
        if self.state is NodeState.ONLINE:
            self.go_offline(now)
        self.state = NodeState.DEPARTED
        self.final_departure_time = now

    def true_availability(self, now: float) -> float:
        """Ground-truth availability: session time / lifetime (§2.1).

        Lifetime runs from first join to final departure (or ``now`` if the
        node is still in the system).  Returns 0 for a node that never
        joined.
        """
        if self.first_join_time is None:
            return 0.0
        end = self.final_departure_time if self.final_departure_time is not None else now
        lifetime = end - self.first_join_time
        session = self.total_session_time
        if self._session_start is not None:
            session += now - self._session_start
        if lifetime <= 0:
            return 1.0 if self.is_online else 0.0
        return min(1.0, session / lifetime)

    # -- neighbour management ---------------------------------------------
    def _invalidate_availability(self) -> None:
        self._avail_dirty = True
        self.availability_version += 1

    def _bump_neighbors_version(self) -> None:
        self.neighbors_version += 1
        if self._topology_listener is not None:
            self._topology_listener()

    def _adopt_view(self, view: NeighborView) -> NeighborView:
        view._on_change = self._invalidate_availability
        return view

    def set_neighbors(self, node_ids: Iterable[int]) -> None:
        """Install a fresh neighbour set, all counters reset to 0 (§2.3)."""
        ids = list(node_ids)
        if self.node_id in ids:
            raise ValueError("a node cannot neighbour itself")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate neighbour ids")
        self.neighbors = {i: self._adopt_view(NeighborView(node_id=i)) for i in ids}
        self._bump_neighbors_version()
        self._invalidate_availability()

    def add_neighbor(self, node_id: int, initial_session_time: float = 0.0) -> None:
        """Discover a new neighbour (counter starts at ``rand(0,T)`` per §2.3)."""
        if node_id == self.node_id:
            raise ValueError("a node cannot neighbour itself")
        if node_id in self.neighbors:
            raise ValueError(f"{node_id} already a neighbour of {self.node_id}")
        self.neighbors[node_id] = self._adopt_view(
            NeighborView(node_id=node_id, session_time=initial_session_time)
        )
        self._bump_neighbors_version()
        self._invalidate_availability()

    def remove_neighbor(self, node_id: int) -> None:
        if node_id not in self.neighbors:
            raise KeyError(f"{node_id} is not a neighbour of {self.node_id}")
        del self.neighbors[node_id]
        self._bump_neighbors_version()
        self._invalidate_availability()

    def neighbor_ids(self) -> List[int]:
        return list(self.neighbors)

    def credit_session_time(
        self, neighbor_id: int, delta: float, now: Optional[float] = None
    ) -> None:
        """Probe bookkeeping: grow a live neighbour's counter by ``delta``
        (the probing period ``T``) and stamp ``last_seen``.

        The prober's per-period update path; funnels through the
        ``session_time`` property so the cached availability normalisation
        is invalidated exactly once per credit.
        """
        if delta < 0:
            raise ValueError(f"negative probe credit {delta}")
        view = self.neighbors.get(neighbor_id)
        if view is None:
            raise KeyError(f"{neighbor_id} is not a neighbour of {self.node_id}")
        view.session_time += delta
        if now is not None:
            view.last_seen = now

    def credit_session_times(
        self, neighbor_ids: Iterable[int], delta: float, now: Optional[float] = None
    ) -> None:
        """Batched probe bookkeeping: grow several live neighbours'
        counters by ``delta`` with a *single* cache invalidation.

        Per-view float updates are the same ``+= delta`` the per-call
        path performs (bit-identical counters); only the invalidation is
        coalesced, which the dirty flag makes equivalent to invalidating
        after every write.  Membership is validated before any counter
        moves, so a bad id leaves the node untouched.
        """
        if delta < 0:
            raise ValueError(f"negative probe credit {delta}")
        views = []
        for neighbor_id in neighbor_ids:
            view = self.neighbors.get(neighbor_id)
            if view is None:
                raise KeyError(
                    f"{neighbor_id} is not a neighbour of {self.node_id}"
                )
            views.append(view)
        for view in views:
            view._session_time += delta
            if now is not None:
                view.last_seen = now
        if views:
            self._invalidate_availability()

    # -- availability estimate (§2.3) --------------------------------------
    def _refresh_availability(self) -> Dict[int, float]:
        """Rebuild the cached ``id -> alpha`` normalisation (O(d))."""
        total = 0.0
        for v in self.neighbors.values():
            total += v._session_time
        if total <= 0.0:
            self._avail_vector = {i: 0.0 for i in self.neighbors}
        else:
            self._avail_vector = {
                i: v._session_time / total for i, v in self.neighbors.items()
            }
        self._avail_dirty = False
        return self._avail_vector

    def availability(self, neighbor_id: int) -> float:
        """Estimated availability ``alpha(u)`` of one neighbour.

        Normalised observed session time over the whole neighbour set; in
        ``[0, 1]`` and summing to 1 across neighbours (0 everywhere if no
        probe has completed yet).  Served from the cached normalisation
        (O(1) after the first lookup since the last counter change).
        """
        if neighbor_id not in self.neighbors:
            raise KeyError(f"{neighbor_id} is not a neighbour of {self.node_id}")
        return self.availability_vector()[neighbor_id]

    def availability_vector(self) -> Dict[int, float]:
        """Estimated availability of every neighbour (id -> alpha).

        Returns the cached normalisation, rebuilt lazily after any counter
        or neighbour-set change.  Callers must treat the mapping as
        **read-only** — it is shared until the next invalidation (the
        routing layer only ever does ``.get`` lookups on it).
        """
        if self._avail_dirty:
            self._perf.availability_cache_misses += 1
            return self._refresh_availability()
        self._perf.availability_cache_hits += 1
        return self._avail_vector

    def __repr__(self) -> str:
        flag = "M" if self.malicious else "g"
        return (
            f"PeerNode({self.node_id}, {self.state.value}, {flag}, "
            f"d={len(self.neighbors)})"
        )
