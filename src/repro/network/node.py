"""Peer node state: neighbour set, observed session times, availability.

Implements the node-local part of §2.3 ("Availability of neighbors"):

- when a peer joins, it initialises the observed session time of each
  neighbour to 0;
- at each probing period ``T`` a live neighbour's counter grows by ``T``;
- a newly discovered neighbour starts at ``rand(0, T)``;
- availability of neighbour ``u`` is the *normalised* counter
  ``alpha(u) = t_s(u) / sum_v t_s(v)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class NodeState(enum.Enum):
    """Lifecycle state of a peer."""

    ONLINE = "online"
    OFFLINE = "offline"  # between sessions; may come back
    DEPARTED = "departed"  # left the system for good


@dataclass
class NeighborView:
    """What a node knows about one neighbour."""

    node_id: int
    #: Observed cumulative session time (probing counter), minutes.
    session_time: float = 0.0
    #: Simulation time of the last successful probe (None = never probed).
    last_seen: Optional[float] = None

    def __post_init__(self):
        if self.session_time < 0:
            raise ValueError(f"negative session_time {self.session_time}")


@dataclass
class PeerNode:
    """A peer in the anonymity overlay.

    The node is deliberately *passive*: routing strategies, probers and the
    churn process act on it.  It owns only local knowledge — its neighbour
    set and the observed availability counters.
    """

    node_id: int
    #: Target neighbour-set size ``d`` (paper default 5).
    degree: int = 5
    state: NodeState = NodeState.OFFLINE
    #: True if the node is an adversary (routes randomly; see §2.4).
    malicious: bool = False
    #: Per-session participation cost ``C^p``.
    participation_cost: float = 1.0
    neighbors: Dict[int, NeighborView] = field(default_factory=dict)
    #: --- true availability bookkeeping (ground truth, not node knowledge)
    first_join_time: Optional[float] = None
    final_departure_time: Optional[float] = None
    total_session_time: float = 0.0
    _session_start: Optional[float] = None

    # -- lifecycle -------------------------------------------------------
    @property
    def is_online(self) -> bool:
        return self.state is NodeState.ONLINE

    def go_online(self, now: float) -> None:
        """Start a session at time ``now``."""
        if self.state is NodeState.DEPARTED:
            raise RuntimeError(f"node {self.node_id} departed; cannot rejoin")
        if self.state is NodeState.ONLINE:
            raise RuntimeError(f"node {self.node_id} already online")
        self.state = NodeState.ONLINE
        self._session_start = now
        if self.first_join_time is None:
            self.first_join_time = now

    def go_offline(self, now: float) -> None:
        """End the current session at time ``now``."""
        if self.state is not NodeState.ONLINE:
            raise RuntimeError(f"node {self.node_id} is not online")
        assert self._session_start is not None
        if now < self._session_start:
            raise ValueError("session cannot end before it started")
        self.total_session_time += now - self._session_start
        self._session_start = None
        self.state = NodeState.OFFLINE

    def depart(self, now: float) -> None:
        """Leave the system permanently (final departure)."""
        if self.state is NodeState.ONLINE:
            self.go_offline(now)
        self.state = NodeState.DEPARTED
        self.final_departure_time = now

    def true_availability(self, now: float) -> float:
        """Ground-truth availability: session time / lifetime (§2.1).

        Lifetime runs from first join to final departure (or ``now`` if the
        node is still in the system).  Returns 0 for a node that never
        joined.
        """
        if self.first_join_time is None:
            return 0.0
        end = self.final_departure_time if self.final_departure_time is not None else now
        lifetime = end - self.first_join_time
        session = self.total_session_time
        if self._session_start is not None:
            session += now - self._session_start
        if lifetime <= 0:
            return 1.0 if self.is_online else 0.0
        return min(1.0, session / lifetime)

    # -- neighbour management ---------------------------------------------
    def set_neighbors(self, node_ids: Iterable[int]) -> None:
        """Install a fresh neighbour set, all counters reset to 0 (§2.3)."""
        ids = list(node_ids)
        if self.node_id in ids:
            raise ValueError("a node cannot neighbour itself")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate neighbour ids")
        self.neighbors = {i: NeighborView(node_id=i) for i in ids}

    def add_neighbor(self, node_id: int, initial_session_time: float = 0.0) -> None:
        """Discover a new neighbour (counter starts at ``rand(0,T)`` per §2.3)."""
        if node_id == self.node_id:
            raise ValueError("a node cannot neighbour itself")
        if node_id in self.neighbors:
            raise ValueError(f"{node_id} already a neighbour of {self.node_id}")
        self.neighbors[node_id] = NeighborView(
            node_id=node_id, session_time=initial_session_time
        )

    def remove_neighbor(self, node_id: int) -> None:
        if node_id not in self.neighbors:
            raise KeyError(f"{node_id} is not a neighbour of {self.node_id}")
        del self.neighbors[node_id]

    def neighbor_ids(self) -> List[int]:
        return list(self.neighbors)

    # -- availability estimate (§2.3) --------------------------------------
    def availability(self, neighbor_id: int) -> float:
        """Estimated availability ``alpha(u)`` of one neighbour.

        Normalised observed session time over the whole neighbour set; in
        ``[0, 1]`` and summing to 1 across neighbours (0 everywhere if no
        probe has completed yet).
        """
        view = self.neighbors.get(neighbor_id)
        if view is None:
            raise KeyError(f"{neighbor_id} is not a neighbour of {self.node_id}")
        total = sum(v.session_time for v in self.neighbors.values())
        if total <= 0.0:
            return 0.0
        return view.session_time / total

    def availability_vector(self) -> Dict[int, float]:
        """Estimated availability of every neighbour (id -> alpha)."""
        total = sum(v.session_time for v in self.neighbors.values())
        if total <= 0.0:
            return {i: 0.0 for i in self.neighbors}
        return {i: v.session_time / total for i, v in self.neighbors.items()}

    def __repr__(self) -> str:
        flag = "M" if self.malicious else "g"
        return (
            f"PeerNode({self.node_id}, {self.state.value}, {flag}, "
            f"d={len(self.neighbors)})"
        )
