"""Per-link bandwidth model and transmission costs.

The paper (§3) models "the transmission cost between two peers as being
proportional to the communication bandwidth between them" — i.e. the cost
of pushing a payload over a link reflects the link's (inverse) capacity:
slow links cost more per byte.  §2.4.1 defines the transmission cost as
``C^t = b·l`` where ``b`` is the payload size and ``l`` the per-unit cost
of the link.

We model symmetric link bandwidths drawn once per unordered pair from a
configurable range (defaults loosely follow the broadband/DSL mix of the
Saroiu et al. measurement study the paper cites for churn).  The per-unit
cost of a link is ``reference_bandwidth / bandwidth`` so that the
*fastest* links have the *lowest* cost, scaled to ``unit_cost`` on a
reference link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass
class BandwidthModel:
    """Lazy, seeded map of unordered peer pairs to link bandwidth and cost.

    Parameters
    ----------
    rng:
        Generator used to draw bandwidths (draws are cached per pair, so
        lookups are deterministic and order-independent within a run).
    min_bandwidth, max_bandwidth:
        Uniform range of symmetric link bandwidth (abstract units, think
        Mbit/s).
    reference_bandwidth:
        Bandwidth at which a link has per-unit cost exactly ``unit_cost``.
    unit_cost:
        Per-unit transmission cost ``l`` on a reference link.
    node_capacity:
        Optional per-node relative capacity (mean ≈ 1; see
        :mod:`repro.network.capacity`).  When set, a link's effective
        bandwidth is the uniform draw scaled by the *slower* endpoint —
        ``min(cap_a, cap_b)`` — so heterogeneous capacities feed directly
        into transmission costs.  ``None`` (default) is bit-identical to
        the homogeneous model.
    """

    rng: np.random.Generator
    min_bandwidth: float = 1.0
    max_bandwidth: float = 10.0
    reference_bandwidth: float = 10.0
    unit_cost: float = 1.0
    node_capacity: Optional[Dict[int, float]] = None
    _links: Dict[Tuple[int, int], float] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not 0 < self.min_bandwidth <= self.max_bandwidth:
            raise ValueError(
                f"invalid bandwidth range [{self.min_bandwidth}, {self.max_bandwidth}]"
            )
        if self.reference_bandwidth <= 0 or self.unit_cost < 0:
            raise ValueError("reference_bandwidth must be > 0 and unit_cost >= 0")

    def bandwidth(self, a: int, b: int) -> float:
        """Symmetric bandwidth of the link {a, b} (cached on first use)."""
        if a == b:
            raise ValueError("no self-links")
        key = _pair(a, b)
        bw = self._links.get(key)
        if bw is None:
            bw = float(self.rng.uniform(self.min_bandwidth, self.max_bandwidth))
            if self.node_capacity is not None:
                bw *= min(
                    self.node_capacity.get(a, 1.0), self.node_capacity.get(b, 1.0)
                )
            self._links[key] = bw
        return bw

    def per_unit_cost(self, a: int, b: int) -> float:
        """Per-unit transmission cost ``l`` of the link {a, b}."""
        return self.unit_cost * self.reference_bandwidth / self.bandwidth(a, b)

    def transmission_cost(self, a: int, b: int, payload_size: float = 1.0) -> float:
        """``C^t = b·l`` for sending ``payload_size`` units over {a, b}."""
        if payload_size < 0:
            raise ValueError(f"negative payload size {payload_size}")
        return payload_size * self.per_unit_cost(a, b)

    def transfer_time(self, a: int, b: int, payload_size: float = 1.0) -> float:
        """Time to push ``payload_size`` units over the link (size/bw)."""
        return payload_size / self.bandwidth(a, b)
