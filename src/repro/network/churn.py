"""Churn: Poisson joins, Pareto sessions, off-times, permanent departures.

The paper simulates "a poisson process ... to simulate the joining of
nodes" with session times "modeled using a Pareto distribution and the
median session time ... set as 60 mins" (§3).  Free riding (§1) appears as
*permanent* departures: some nodes leave for good after a session, so the
availability ratio session-time/lifetime (§2.1) is meaningful.

Two entry points:

- :func:`node_lifecycle` — per-node process: online for a Pareto session,
  then either depart permanently (probability ``depart_prob``) or go
  offline for an exponential off-time and rejoin.
- :func:`churn_process` — population process: brings fresh nodes into the
  overlay at Poisson arrival times (replacing departures over time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.network.overlay import Overlay
from repro.obs.events import EventBus
from repro.sim.distributions import Exponential, Pareto
from repro.sim.engine import Environment


@dataclass(frozen=True)
class ChurnModel:
    """Parameters of the churn process.

    Defaults follow the paper: Pareto sessions with a 60-minute median;
    off-times with a 30-minute mean (the paper does not state a value; the
    estimate is within the range of the Saroiu et al. study it cites);
    a 10% chance of permanent departure after each session; new-node
    arrivals at ``arrival_rate`` per minute (0 disables arrivals).
    """

    session: Pareto = field(default_factory=lambda: Pareto.with_median(60.0))
    offtime: Exponential = field(default_factory=lambda: Exponential(mean=30.0))
    depart_prob: float = 0.1
    arrival_rate: float = 0.0
    arrival_malicious_prob: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.depart_prob <= 1.0:
            raise ValueError(f"depart_prob out of range: {self.depart_prob}")
        if self.arrival_rate < 0:
            raise ValueError(f"negative arrival_rate {self.arrival_rate}")
        if not 0.0 <= self.arrival_malicious_prob <= 1.0:
            raise ValueError(
                f"arrival_malicious_prob out of range: {self.arrival_malicious_prob}"
            )


def node_lifecycle(
    env: Environment,
    overlay: Overlay,
    node_id: int,
    model: ChurnModel,
    rng: np.random.Generator,
    session_scale: "Callable[[int], float] | None" = None,
    bus: "Optional[EventBus]" = None,
):
    """Drive one (already online) node through session/off-time cycles.

    ``session_scale(node_id)`` — evaluated at the *start* of each session
    — multiplies the sampled session duration.  This is how the incentive
    mechanism feeds back into availability: a peer that is earning
    forwarding income stays online longer (the paper's §1 thesis that
    incentives "induce the peer nodes to provide anonymity forwarding as
    reliable service").  Default: exogenous churn (scale 1).

    ``bus`` records ``churn.leave`` / ``churn.join`` / ``churn.depart``
    events (emission follows the overlay transition, so attaching a bus
    never changes the RNG sequence).
    """
    node = overlay.nodes[node_id]
    if not node.is_online:
        raise ValueError(f"node {node_id} must be online when lifecycle starts")
    while True:
        scale = 1.0
        if session_scale is not None:
            scale = session_scale(node_id)
            if scale <= 0:
                raise ValueError(f"session scale must be positive, got {scale}")
        yield env.timeout(model.session.sample(rng) * scale)
        if rng.random() < model.depart_prob:
            overlay.depart(node_id, env.now)
            if bus is not None:
                bus.emit("churn.depart", node=node_id)
            return
        # An injected crash (repro.sim.faults) may have taken the node
        # offline mid-session; the guarded leave/join keep the lifecycle
        # and the crash/recovery processes from tripping over each other.
        if overlay.is_online(node_id):
            overlay.leave(node_id, env.now)
            if bus is not None:
                bus.emit("churn.leave", node=node_id)
        yield env.timeout(model.offtime.sample(rng))
        # The population may have shrunk below 2 while we slept; join()
        # handles the (re)wiring of neighbours if the set was never built.
        if not overlay.is_online(node_id):
            overlay.join(node_id, env.now)
            if bus is not None:
                bus.emit("churn.join", node=node_id)


def churn_process(
    env: Environment,
    overlay: Overlay,
    model: ChurnModel,
    rng: np.random.Generator,
    participation_cost: float = 1.0,
    bus: "Optional[EventBus]" = None,
):
    """Poisson arrival process: new nodes join and get their own lifecycle."""
    if model.arrival_rate <= 0:
        return
        yield  # pragma: no cover - makes this a generator
    while True:
        yield env.timeout(rng.exponential(1.0 / model.arrival_rate))
        node = overlay.spawn_node(
            malicious=bool(rng.random() < model.arrival_malicious_prob),
            participation_cost=participation_cost,
        )
        overlay.join(node.node_id, env.now)
        if bus is not None:
            bus.emit("churn.join", node=node.node_id, arrival=True)
        env.process(node_lifecycle(env, overlay, node.node_id, model, rng, bus=bus))


def start_population_churn(
    env: Environment,
    overlay: Overlay,
    model: ChurnModel,
    rng: np.random.Generator,
) -> int:
    """Attach a lifecycle process to every currently online node.

    Returns the number of processes started.  Call once after
    :meth:`Overlay.bootstrap`; combine with :func:`churn_process` for
    arrivals.
    """
    started = 0
    for node_id in overlay.online_ids():
        env.process(node_lifecycle(env, overlay, node_id, model, rng))
        started += 1
    return started
