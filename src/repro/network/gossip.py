"""Gossip-based membership: decentralised peer discovery.

The overlay's default discovery (:meth:`Overlay.random_online_peer`) is
an oracle — it samples the true online population, standing in for the
bootstrap service the paper's technical report would specify.  This
module provides the decentralised alternative real P2P deployments use:
a **partial-view shuffle** protocol in the Cyclon family.

Each node keeps a bounded view of (peer id, age) descriptors.  Every
gossip round a node:

1. ages its descriptors;
2. picks its *oldest* descriptor as the shuffle partner (old entries are
   the most likely stale, so they get verified or dropped first);
3. exchanges a random half of its view with the partner (each inserts
   the received descriptors with age 0, evicting its oldest entries);
4. drops the partner descriptor if the partner turned out offline
   (failure detection).

Sampling from the view replaces oracle sampling: the prober can draw
neighbour replacements from its node's partial view, making discovery
fully decentralised.  The tests measure the two properties that matter:
views converge to mostly-live entries under churn, and view sampling is
close enough to uniform for the availability estimator to work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.network.overlay import Overlay


@dataclass
class Descriptor:
    """One partial-view entry."""

    node_id: int
    age: int = 0


@dataclass
class PartialView:
    """A bounded, aged view of known peers for one node."""

    owner: int
    capacity: int = 10
    entries: Dict[int, Descriptor] = field(default_factory=dict)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")

    def insert(self, node_id: int, age: int = 0) -> None:
        """Add/refresh a descriptor, evicting the oldest when full."""
        if node_id == self.owner:
            return
        existing = self.entries.get(node_id)
        if existing is not None:
            existing.age = min(existing.age, age)
            return
        if len(self.entries) >= self.capacity:
            oldest = max(self.entries.values(), key=lambda d: (d.age, d.node_id))
            del self.entries[oldest.node_id]
        self.entries[node_id] = Descriptor(node_id=node_id, age=age)

    def remove(self, node_id: int) -> None:
        self.entries.pop(node_id, None)

    def age_all(self) -> None:
        for d in self.entries.values():
            d.age += 1

    def oldest_peer(self) -> Optional[int]:
        if not self.entries:
            return None
        return max(self.entries.values(), key=lambda d: (d.age, d.node_id)).node_id

    def sample(self, k: int, rng: np.random.Generator, exclude=()) -> List[int]:
        """Up to ``k`` distinct random peers from the view."""
        pool = sorted(set(self.entries) - set(exclude))
        if not pool or k < 1:
            return []
        k = min(k, len(pool))
        picked = rng.choice(pool, size=k, replace=False)
        return [int(x) for x in picked]

    def ids(self) -> List[int]:
        return sorted(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class GossipMembership:
    """The shuffle protocol over all nodes' partial views."""

    overlay: Overlay
    rng: np.random.Generator
    view_capacity: int = 10
    shuffle_size: int = 4
    views: Dict[int, PartialView] = field(default_factory=dict)
    rounds_run: int = 0

    def __post_init__(self):
        if self.shuffle_size < 1:
            raise ValueError(f"shuffle_size must be >= 1, got {self.shuffle_size}")

    def view_of(self, node_id: int) -> PartialView:
        view = self.views.get(node_id)
        if view is None:
            view = PartialView(owner=node_id, capacity=self.view_capacity)
            self.views[node_id] = view
        return view

    def bootstrap_from_neighbors(self) -> None:
        """Seed every node's view with its current neighbour set."""
        for node in self.overlay.nodes.values():
            view = self.view_of(node.node_id)
            for nbr in node.neighbor_ids():
                view.insert(nbr)

    def _shuffle_pair(self, a: int, b: int) -> None:
        """One bidirectional view exchange between nodes a and b.

        Descriptors keep their age across the exchange (Cyclon): only a
        *direct* contact proves liveness and resets age to 0.  Forwarded
        hearsay stays old, so stale entries keep rising to "oldest" and
        get verified or purged.
        """
        va, vb = self.view_of(a), self.view_of(b)
        sent = va.sample(self.shuffle_size, self.rng, exclude=(b,))
        reply = vb.sample(self.shuffle_size, self.rng, exclude=(a,))
        for nid in reply:
            va.insert(nid, age=vb.entries[nid].age if nid in vb.entries else 0)
        for nid in sent:
            vb.insert(nid, age=va.entries[nid].age if nid in va.entries else 0)
        # The exchange itself proves mutual liveness.
        va.insert(b, age=0)
        vb.insert(a, age=0)

    def run_round(self) -> dict:
        """One gossip round over all online nodes.  Returns stats."""
        contacted = failed = 0
        for node_id in self.overlay.online_ids():
            view = self.view_of(node_id)
            view.age_all()
            # The node probes its neighbours anyway (§2.3), so live
            # neighbours are free, verified view entries — this also
            # seeds the views of late joiners.
            for nbr in self.overlay.nodes[node_id].neighbor_ids():
                if self.overlay.is_online(nbr):
                    view.insert(nbr, age=0)
            partner = view.oldest_peer()
            if partner is None:
                continue
            if not self.overlay.is_online(partner):
                view.remove(partner)  # failure detection
                failed += 1
                continue
            self._shuffle_pair(node_id, partner)
            contacted += 1
        self.rounds_run += 1
        return {"contacted": contacted, "failed": failed}

    # -- discovery API (drop-in for the overlay oracle) ------------------
    def discover(self, node_id: int, exclude=()) -> Optional[int]:
        """A random *live* peer from the node's own partial view.

        Unlike the oracle, this may return None even when live peers
        exist (the view is partial) and never consults global state.
        """
        view = self.view_of(node_id)
        candidates = view.sample(len(view), self.rng, exclude=(node_id, *exclude))
        for candidate in candidates:
            if self.overlay.is_online(candidate):
                return candidate
            view.remove(candidate)
        return None

    # -- health metrics ---------------------------------------------------
    def live_fraction(self) -> float:
        """Mean fraction of live entries across online nodes' views."""
        fractions = []
        for node_id in self.overlay.online_ids():
            view = self.view_of(node_id)
            if not view.entries:
                continue
            live = sum(1 for nid in view.entries if self.overlay.is_online(nid))
            fractions.append(live / len(view.entries))
        return float(np.mean(fractions)) if fractions else 0.0

    def reach(self) -> float:
        """Fraction of live (node, peer) pairs connected through the
        transitive closure of views — 1.0 means gossip keeps the overlay
        connected."""
        online = self.overlay.online_ids()
        if len(online) < 2:
            return 1.0
        index = {nid: i for i, nid in enumerate(online)}
        adj: List[List[int]] = [[] for _ in online]
        for nid in online:
            for peer in self.view_of(nid).ids():
                if peer in index:
                    adj[index[nid]].append(index[peer])
        # BFS from node 0's component, treating views as undirected links.
        undirected: List[set] = [set() for _ in online]
        for i, outs in enumerate(adj):
            for j in outs:
                undirected[i].add(j)
                undirected[j].add(i)
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for i in frontier:
                for j in undirected[i]:
                    if j not in seen:
                        seen.add(j)
                        nxt.append(j)
            frontier = nxt
        return len(seen) / len(online)
