"""Time-stamped record of overlay membership events.

The intersection-attack analysis (§2.1, [27]) observes *which nodes were
online* at the times a recurring connection was active and intersects those
sets.  :class:`NetworkTrace` is the ground-truth event log that makes this
observable: every join/leave/departure is appended with its simulation
time, and :meth:`online_at` reconstructs the active set at any instant.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set


class TraceEventKind(enum.Enum):
    JOIN = "join"
    LEAVE = "leave"
    DEPART = "depart"


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: TraceEventKind
    node_id: int


@dataclass
class NetworkTrace:
    """Append-only membership log with point-in-time reconstruction."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, time: float, kind: TraceEventKind, node_id: int) -> None:
        if self.events and time < self.events[-1].time:
            raise ValueError(
                f"events must be recorded in time order "
                f"({time} < {self.events[-1].time})"
            )
        self.events.append(TraceEvent(time, kind, node_id))

    def join(self, time: float, node_id: int) -> None:
        self.record(time, TraceEventKind.JOIN, node_id)

    def leave(self, time: float, node_id: int) -> None:
        self.record(time, TraceEventKind.LEAVE, node_id)

    def depart(self, time: float, node_id: int) -> None:
        self.record(time, TraceEventKind.DEPART, node_id)

    def online_at(self, time: float) -> FrozenSet[int]:
        """The set of node ids online at ``time`` (inclusive of events at t)."""
        # Events are time-ordered; replay the prefix up to `time`.
        times = [e.time for e in self.events]
        end = bisect.bisect_right(times, time)
        online: Set[int] = set()
        for e in self.events[:end]:
            if e.kind is TraceEventKind.JOIN:
                online.add(e.node_id)
            else:
                online.discard(e.node_id)
        return frozenset(online)

    def session_counts(self) -> Dict[int, int]:
        """Number of sessions (joins) per node."""
        counts: Dict[int, int] = {}
        for e in self.events:
            if e.kind is TraceEventKind.JOIN:
                counts[e.node_id] = counts.get(e.node_id, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)
