"""Heterogeneous node capacities (Buragohain et al., PAPERS.md).

The paper treats peers as homogeneous; real P2P populations are not —
measured capacity (bandwidth, uptime budget, CPU) spans orders of
magnitude.  This module draws a per-node *relative capacity* (normalised
to mean 1.0 so aggregate workload scales stay comparable across
distributions) and exposes the two couplings the incentive analysis
cares about:

- **availability**: capable nodes sustain longer sessions
  (``cap ** availability_coupling`` multiplies sampled session times via
  the churn model's ``session_scale`` hook);
- **cost**: capable nodes forward more cheaply
  (``C^p * cap ** -cost_coupling``), which spreads the Proposition 2/3
  thresholds into a *distribution* of reserve prices — exactly the
  follower heterogeneity the Stackelberg pricing game
  (:mod:`repro.gametheory.stackelberg`) prices against.

Link bandwidth heterogeneity plugs in separately through
``BandwidthModel(node_capacity=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

#: Supported capacity distributions.
CAPACITY_DISTRIBUTIONS = ("uniform", "pareto", "classes")

#: Default capacity classes: (relative capacity, weight) — a stylised
#: dialup / broadband / server mix.
DEFAULT_CLASSES: Tuple[Tuple[float, float], ...] = (
    (0.3, 0.5),
    (1.0, 0.35),
    (4.0, 0.15),
)


def draw_capacities(
    node_ids: Iterable[int],
    rng: np.random.Generator,
    distribution: str = "uniform",
    spread: float = 0.6,
    pareto_alpha: float = 1.5,
    classes: Sequence[Tuple[float, float]] = DEFAULT_CLASSES,
) -> Dict[int, float]:
    """Draw one relative capacity per node, normalised to mean 1.0.

    ``uniform``: ``U[1 - spread, 1 + spread]``.  ``pareto``: heavy-tailed
    ``1 + Lomax(alpha)`` (a few super-peers, many weak ones).
    ``classes``: discrete classes sampled by weight.  Nodes are iterated
    in sorted id order so the draw sequence is population-order
    independent.
    """
    ids = sorted(node_ids)
    if not ids:
        return {}
    if distribution == "uniform":
        if not 0 <= spread < 1:
            raise ValueError(f"spread must be in [0, 1), got {spread}")
        raw = [float(rng.uniform(1.0 - spread, 1.0 + spread)) for _ in ids]
    elif distribution == "pareto":
        if pareto_alpha <= 0:
            raise ValueError(f"pareto_alpha must be > 0, got {pareto_alpha}")
        raw = [1.0 + float(rng.pareto(pareto_alpha)) for _ in ids]
    elif distribution == "classes":
        if not classes:
            raise ValueError("need at least one capacity class")
        values = [float(c) for c, _ in classes]
        weights = np.array([float(w) for _, w in classes], dtype=float)
        if (weights <= 0).any():
            raise ValueError("class weights must be positive")
        probs = weights / weights.sum()
        raw = [values[int(rng.choice(len(values), p=probs))] for _ in ids]
    else:
        raise ValueError(
            f"unknown capacity distribution {distribution!r}; "
            f"expected one of {CAPACITY_DISTRIBUTIONS}"
        )
    mean = sum(raw) / len(raw)
    return {nid: c / mean for nid, c in zip(ids, raw)}


@dataclass(frozen=True)
class CapacityProfile:
    """Drawn capacities plus the coupling strengths applied to them."""

    capacities: Dict[int, float]
    availability_coupling: float = 0.0
    cost_coupling: float = 0.0

    def __post_init__(self) -> None:
        if self.availability_coupling < 0 or self.cost_coupling < 0:
            raise ValueError("couplings must be >= 0")
        for nid, cap in self.capacities.items():
            if cap <= 0:
                raise ValueError(f"non-positive capacity {cap} for node {nid}")

    def capacity(self, node_id: int) -> float:
        return self.capacities.get(node_id, 1.0)

    def session_scale(self, node_id: int) -> float:
        """Session-duration multiplier: ``cap ** availability_coupling``."""
        return self.capacity(node_id) ** self.availability_coupling

    def participation_cost(self, base_cost: float, node_id: int) -> float:
        """Per-node ``C^p``: ``base * cap ** -cost_coupling``."""
        return base_cost * self.capacity(node_id) ** -self.cost_coupling

    def participation_costs(self, base_cost: float) -> Dict[int, float]:
        return {
            nid: self.participation_cost(base_cost, nid)
            for nid in sorted(self.capacities)
        }

    def session_scale_fn(self) -> Callable[[int], float]:
        """Adapter for ``node_lifecycle(session_scale=...)``."""
        return self.session_scale


def combined_session_scale(
    *scales: Callable[[int], float],
) -> Callable[[int], float]:
    """Multiply independent session-scale couplings (e.g. capacity ×
    incentive feedback) into one ``session_scale`` callable."""

    def scale(node_id: int) -> float:
        out = 1.0
        for s in scales:
            out *= s(node_id)
        return out

    return scale


def apply_participation_costs(
    nodes: Mapping[int, object], profile: CapacityProfile, base_cost: float
) -> None:
    """Overwrite each node's ``participation_cost`` from its capacity."""
    for nid in sorted(profile.capacities):
        node = nodes.get(nid)
        if node is not None:
            node.participation_cost = profile.participation_cost(base_cost, nid)


__all__ = [
    "CAPACITY_DISTRIBUTIONS",
    "DEFAULT_CLASSES",
    "CapacityProfile",
    "apply_participation_costs",
    "combined_session_scale",
    "draw_capacities",
]
