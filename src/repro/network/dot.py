"""Graphviz DOT export for overlays and paths.

The simulation is headless, but overlay structure and forwarding paths
are easiest to debug visually.  These functions emit plain DOT text a
user can render with graphviz (``dot -Tsvg``) — no graphviz dependency
here.

Styling conventions: malicious nodes are drawn as red boxes, offline
nodes grey, initiator/responder double circles; the highlighted path's
edges are bold blue and numbered by hop.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.path import Path
from repro.network.overlay import Overlay


def _node_attrs(overlay: Overlay, node_id: int, path: Optional[Path]) -> str:
    node = overlay.nodes[node_id]
    attrs = []
    if path is not None and node_id in (path.initiator, path.responder):
        attrs.append("shape=doublecircle")
        attrs.append(
            'label="I"' if node_id == path.initiator else 'label="R"'
        )
    elif node.malicious:
        attrs.append("shape=box")
        attrs.append("color=red")
    if not overlay.is_online(node_id):
        attrs.append("style=dashed")
        attrs.append("fontcolor=grey")
    return f'  n{node_id} [{", ".join(attrs)}];' if attrs else f"  n{node_id};"


def overlay_to_dot(
    overlay: Overlay,
    path: Optional[Path] = None,
    include_offline: bool = False,
    name: str = "overlay",
) -> str:
    """DOT digraph of the overlay's neighbour edges.

    When ``path`` is given its hops are drawn bold blue with hop numbers
    and its endpoints marked I / R.
    """
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    shown = set()
    for node_id, node in sorted(overlay.nodes.items()):
        if not include_offline and not overlay.is_online(node_id):
            continue
        shown.add(node_id)
        lines.append(_node_attrs(overlay, node_id, path))
    path_edges = {}
    if path is not None:
        for hop, (a, b) in enumerate(path.edges, start=1):
            path_edges[(a, b)] = hop
    for node_id in sorted(shown):
        for nbr in sorted(overlay.nodes[node_id].neighbors):
            if nbr not in shown:
                continue
            if (node_id, nbr) in path_edges:
                continue  # drawn below with path styling
            lines.append(f"  n{node_id} -> n{nbr} [color=lightgrey];")
    for (a, b), hop in sorted(path_edges.items(), key=lambda kv: kv[1]):
        lines.append(
            f'  n{a} -> n{b} [color=blue, penwidth=2.5, label="{hop}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def paths_to_dot(paths: Iterable[Path], name: str = "series") -> str:
    """DOT digraph of a series' paths overlaid (edge labels count reuse).

    A visual rendering of the §2.1 objective: a stable series shows few,
    heavily-reused edges; random routing shows a hairball.
    """
    counts = {}
    endpoints = None
    for p in paths:
        endpoints = (p.initiator, p.responder)
        for edge in p.edges:
            counts[edge] = counts.get(edge, 0) + 1
    if endpoints is None:
        raise ValueError("no paths given")
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    nodes = {n for e in counts for n in e}
    for n in sorted(nodes):
        if n == endpoints[0]:
            lines.append(f'  n{n} [shape=doublecircle, label="I"];')
        elif n == endpoints[1]:
            lines.append(f'  n{n} [shape=doublecircle, label="R"];')
        else:
            lines.append(f"  n{n};")
    peak = max(counts.values())
    for (a, b), c in sorted(counts.items()):
        width = 1.0 + 4.0 * c / peak
        lines.append(
            f'  n{a} -> n{b} [label="{c}", penwidth={width:.2f}];'
        )
    lines.append("}")
    return "\n".join(lines)
