"""Churn estimation from probe observations (§2.3's citation [25]).

"Mechanisms based on active probing have been used to estimate churn in
peer-to-peer systems."  This module closes that loop: given the
session-time observations a prober actually collects, estimate the
underlying session distribution.

The statistical subtlety is **censoring**: a probe-based monitor sees a
neighbour's session in progress, so most observations are *lower bounds*
(the session was still alive at the last probe), and sessions shorter
than one probe period are missed entirely.  We provide:

- :func:`pareto_mle` — maximum-likelihood shape/scale for complete
  (uncensored) Pareto samples: ``alpha = n / sum(log(x_i / x_m))``;
- :func:`pareto_mle_censored` — the right-censored variant: censored
  observations contribute survival mass ``(x_m / x)^alpha``, giving
  ``alpha = d / sum(log(x_i / x_m))`` with ``d`` the number of
  *completed* sessions (a standard result for type-I censoring);
- :class:`SessionObserver` — collects completed/ongoing session lengths
  from overlay trace events and produces the estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.network.trace import NetworkTrace, TraceEventKind
from repro.sim.distributions import Pareto


def pareto_mle(samples, xm: "float | None" = None) -> Pareto:
    """MLE Pareto fit for complete samples.

    ``xm`` defaults to the sample minimum (its MLE).  Requires at least
    two samples and strictly positive values.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size < 2:
        raise ValueError("need at least 2 samples")
    if np.any(arr <= 0):
        raise ValueError("samples must be positive")
    scale = float(arr.min()) if xm is None else float(xm)
    if scale <= 0 or np.any(arr < scale - 1e-12):
        raise ValueError("xm must be positive and <= all samples")
    logs = np.log(arr / scale)
    total = float(logs.sum())
    if total <= 0:
        raise ValueError("degenerate sample (all values equal xm)")
    alpha = arr.size / total
    return Pareto(alpha=alpha, xm=scale)


def pareto_mle_censored(
    completed, censored, xm: "float | None" = None
) -> Pareto:
    """MLE Pareto fit with right-censored observations.

    ``completed`` are fully observed session lengths; ``censored`` are
    lower bounds (sessions still running at last probe).  The censored
    log-likelihood gives ``alpha = d / sum_all(log(x_i / x_m))`` where
    ``d = len(completed)`` and the sum runs over *all* observations.
    """
    done = np.asarray(list(completed), dtype=float)
    cens = np.asarray(list(censored), dtype=float)
    if done.size < 1:
        raise ValueError("need at least 1 completed observation")
    if np.any(done <= 0) or (cens.size and np.any(cens <= 0)):
        raise ValueError("observations must be positive")
    scale = float(done.min()) if xm is None else float(xm)
    if scale <= 0 or np.any(done < scale - 1e-12):
        raise ValueError("xm must be positive and <= all completed observations")
    # A session censored below xm has survival probability 1 under the
    # Pareto: it carries no information and is dropped.
    informative_cens = cens[cens >= scale] if cens.size else cens
    every = (
        np.concatenate([done, informative_cens])
        if informative_cens.size
        else done
    )
    total = float(np.log(every / scale).sum())
    if total <= 0:
        raise ValueError("degenerate observations")
    alpha = done.size / total
    return Pareto(alpha=alpha, xm=scale)


@dataclass
class SessionObserver:
    """Extracts session-length observations from a membership trace.

    A join..leave/depart pair is a *completed* session; a join with no
    matching end by ``now`` is *censored* at ``now - join_time``.
    """

    trace: NetworkTrace
    _open: Dict[int, float] = field(default_factory=dict, repr=False)

    def observations(self, now: float) -> Tuple[List[float], List[float]]:
        completed: List[float] = []
        open_since: Dict[int, float] = {}
        for e in self.trace.events:
            if e.time > now:
                break
            if e.kind is TraceEventKind.JOIN:
                open_since[e.node_id] = e.time
            else:
                start = open_since.pop(e.node_id, None)
                if start is not None and e.time > start:
                    completed.append(e.time - start)
        censored = [now - start for start in open_since.values() if now > start]
        return completed, censored

    def fit(self, now: float, xm: "float | None" = None) -> Pareto:
        """Censored-MLE Pareto fit of the session distribution."""
        completed, censored = self.observations(now)
        return pareto_mle_censored(completed, censored, xm=xm)

    def estimated_median(self, now: float, xm: "float | None" = None) -> float:
        return self.fit(now, xm=xm).median


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth (guards the zero case)."""
    if truth == 0:
        raise ValueError("truth must be non-zero")
    return abs(estimate - truth) / abs(truth)
