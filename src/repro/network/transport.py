"""Message-level transport simulation: latency of anonymous paths.

The routing layer (:mod:`repro.core.protocol`) decides *who* forwards;
this layer simulates *how long* the forwarding takes.  Each link is a
shared, serialised channel (a :class:`~repro.sim.resources.Resource`):
transferring a payload occupies the link for ``size / bandwidth`` time
units plus a fixed propagation delay, and each node adds a processing
delay per forwarding instance.  Messages queue when links are busy.

The headline quantity is the **anonymity latency overhead**: an
L-forwarder path costs roughly L+1 transfers versus one direct transfer.
Because the utility models charge the transmission cost ``C^t`` (which is
inversely proportional to bandwidth) inside the forwarder's utility,
incentive routing systematically prefers fast links — a measurable
latency *benefit* over random routing, which the latency benchmark
quantifies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.bandwidth import BandwidthModel
from repro.core.path import Path
from repro.sim.engine import Environment
from repro.sim.faults import FaultInjector
from repro.sim.resources import Resource, Store


class MessageKind(enum.Enum):
    CONTRACT_OFFER = "contract-offer"
    PAYLOAD = "payload"
    CONFIRMATION = "confirmation"
    PROBE = "probe"


@dataclass(frozen=True)
class Message:
    """One protocol message in flight."""

    kind: MessageKind
    cid: int
    round_index: int
    sender: int
    receiver: int
    size: float
    sent_at: float

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"message size must be positive, got {self.size}")


@dataclass
class TransportNetwork:
    """Shared links + per-node inboxes on top of the DES kernel.

    Parameters
    ----------
    env, bandwidth:
        Simulation environment and the link-capacity model (shared with
        the cost model so utility decisions and latency agree).
    propagation_delay:
        Fixed per-hop delay added to the bandwidth-determined transfer
        time.
    processing_delay:
        Per-node forwarding overhead (crypto, queueing internals).
    """

    env: Environment
    bandwidth: BandwidthModel
    propagation_delay: float = 0.01
    processing_delay: float = 0.005
    #: Unified fault source (repro.sim.faults): messages may be dropped
    #: or delayed per :class:`MessageKind` according to the injector's
    #: plan.  None = perfect transport (today's behaviour).
    fault_injector: Optional[FaultInjector] = None
    _links: Dict[Tuple[int, int], Resource] = field(default_factory=dict, repr=False)
    inboxes: Dict[int, Store] = field(default_factory=dict, repr=False)
    delivered: List[Message] = field(default_factory=list)
    dropped: List[Message] = field(default_factory=list)

    def __post_init__(self):
        if self.propagation_delay < 0 or self.processing_delay < 0:
            raise ValueError("delays must be non-negative")

    def _link(self, a: int, b: int) -> Resource:
        key = (a, b) if a <= b else (b, a)
        res = self._links.get(key)
        if res is None:
            res = Resource(self.env, capacity=1)
            self._links[key] = res
        return res

    def inbox(self, node_id: int) -> Store:
        box = self.inboxes.get(node_id)
        if box is None:
            box = Store(self.env)
            self.inboxes[node_id] = box
        return box

    def transfer(self, message: Message):
        """Process: move one message over its link (queues if busy).

        Returns True when the message was delivered, False when the fault
        injector dropped it in transit (the link was still briefly
        occupied — a lost message consumes the channel like a real one).
        """
        link = self._link(message.sender, message.receiver)
        req = link.request()
        yield req
        try:
            duration = (
                self.bandwidth.transfer_time(
                    message.sender, message.receiver, message.size
                )
                + self.propagation_delay
            )
            if self.fault_injector is not None:
                duration += self.fault_injector.message_delay(message.kind.value)
            yield self.env.timeout(duration)
        finally:
            link.release(req)
        if self.fault_injector is not None and self.fault_injector.drop_message(
            message.kind.value
        ):
            self.dropped.append(message)
            return False
        self.delivered.append(message)
        yield self.inbox(message.receiver).put(message)
        return True

    def send_along_path(
        self,
        path: Path,
        payload_size: float = 1.0,
        confirmation_size: float = 0.05,
    ):
        """Process: full round trip of one connection round.

        Payload travels initiator -> forwarders -> responder; the
        confirmation returns over the reverse path.  Returns the
        (payload_latency, round_trip_latency) pair, or None when the
        fault injector dropped the payload or confirmation in transit
        (the round's transfer is lost; callers count a dropped round).
        """
        start = self.env.now
        hops = list(zip(path.nodes[:-1], path.nodes[1:]))
        for sender, receiver in hops:
            msg = Message(
                kind=MessageKind.PAYLOAD,
                cid=path.cid,
                round_index=path.round_index,
                sender=sender,
                receiver=receiver,
                size=payload_size,
                sent_at=self.env.now,
            )
            delivered = yield self.env.process(self.transfer(msg))
            if delivered is False:
                return None
            yield self.env.timeout(self.processing_delay)
        payload_latency = self.env.now - start
        for sender, receiver in reversed([(a, b) for a, b in hops]):
            msg = Message(
                kind=MessageKind.CONFIRMATION,
                cid=path.cid,
                round_index=path.round_index,
                sender=receiver,
                receiver=sender,
                size=confirmation_size,
                sent_at=self.env.now,
            )
            delivered = yield self.env.process(self.transfer(msg))
            if delivered is False:
                return None
        round_trip = self.env.now - start
        return payload_latency, round_trip

    def direct_transfer_latency(self, a: int, b: int, payload_size: float = 1.0) -> float:
        """Analytic latency of an unanonymised direct transfer (baseline
        for the overhead metric; ignores queueing)."""
        return (
            self.bandwidth.transfer_time(a, b, payload_size)
            + self.propagation_delay
        )


def measure_path_latency(
    path: Path,
    bandwidth: BandwidthModel,
    payload_size: float = 1.0,
    propagation_delay: float = 0.01,
    processing_delay: float = 0.005,
) -> Dict[str, float]:
    """Run one round trip on a fresh environment and report latencies.

    Returns ``payload``, ``round_trip``, ``direct`` and ``overhead``
    (payload latency / direct latency).
    """
    env = Environment()
    net = TransportNetwork(
        env=env,
        bandwidth=bandwidth,
        propagation_delay=propagation_delay,
        processing_delay=processing_delay,
    )
    proc = env.process(net.send_along_path(path, payload_size=payload_size))
    payload_latency, round_trip = env.run(until=proc)
    direct = net.direct_transfer_latency(path.initiator, path.responder, payload_size)
    return {
        "payload": payload_latency,
        "round_trip": round_trip,
        "direct": direct,
        "overhead": payload_latency / direct if direct > 0 else float("inf"),
    }
