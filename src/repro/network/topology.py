"""Structured overlay topologies.

The paper wires each node to ``d`` uniformly random peers.  Real P2P
deployments exhibit structure — small-world rewiring, preferential
attachment — and the topology shapes both path quality and attack
surface.  This module generates alternative neighbour graphs (via
networkx) and installs them into an :class:`Overlay`:

- ``random`` — the paper's model: every node samples d random peers
  (directed, possibly asymmetric);
- ``regular`` — a random d-regular graph (symmetric neighbour sets);
- ``small-world`` — Watts-Strogatz ring with rewiring;
- ``scale-free`` — Barabási-Albert preferential attachment (hub-heavy,
  the worst case for availability attacks: hubs are natural targets).
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from repro.network.overlay import Overlay

TOPOLOGIES = ("random", "regular", "small-world", "scale-free")


def build_topology(
    kind: str, n: int, degree: int, rng: np.random.Generator
) -> Dict[int, List[int]]:
    """Neighbour lists for ``n`` nodes under the requested topology.

    Undirected generators return symmetric adjacency; ``random`` returns
    possibly asymmetric directed neighbour sets (the paper's model).
    Node ids are 0..n-1.
    """
    if n < 3:
        raise ValueError(f"need at least 3 nodes, got {n}")
    if not 1 <= degree < n:
        raise ValueError(f"degree must satisfy 1 <= d < n, got {degree}")
    seed = int(rng.integers(0, 2**31 - 1))
    if kind == "random":
        out: Dict[int, List[int]] = {}
        for node in range(n):
            pool = [i for i in range(n) if i != node]
            picks = rng.choice(pool, size=degree, replace=False)
            out[node] = sorted(int(i) for i in picks)
        return out
    if kind == "regular":
        d = degree if (degree * n) % 2 == 0 else degree + 1
        g = nx.random_regular_graph(d, n, seed=seed)
    elif kind == "small-world":
        k = degree if degree % 2 == 0 else degree + 1
        g = nx.watts_strogatz_graph(n, k, p=0.2, seed=seed)
    elif kind == "scale-free":
        m = max(1, degree // 2)
        g = nx.barabasi_albert_graph(n, m, seed=seed)
    else:
        raise ValueError(f"unknown topology {kind!r}; expected one of {TOPOLOGIES}")
    return {node: sorted(int(x) for x in g.neighbors(node)) for node in range(n)}


def install_topology(overlay: Overlay, adjacency: Dict[int, List[int]]) -> None:
    """Replace every node's neighbour set with the topology's lists.

    Counters reset to zero (a fresh join, per §2.3).  Node ids in the
    adjacency must exist in the overlay.
    """
    for node_id, neighbors in adjacency.items():
        node = overlay.nodes[node_id]
        node.set_neighbors(neighbors)


def topology_stats(adjacency: Dict[int, List[int]]) -> Dict[str, float]:
    """Connectivity statistics used by the tests and the ablation bench."""
    g = nx.DiGraph()
    g.add_nodes_from(adjacency)
    for node, neighbors in adjacency.items():
        for nbr in neighbors:
            g.add_edge(node, nbr)
    und = g.to_undirected()
    degrees = [len(v) for v in adjacency.values()]
    stats: Dict[str, float] = {
        "n": float(len(adjacency)),
        "mean_degree": float(np.mean(degrees)),
        "max_degree": float(np.max(degrees)),
        "connected": float(nx.is_connected(und)),
    }
    if nx.is_connected(und):
        stats["avg_shortest_path"] = float(nx.average_shortest_path_length(und))
        stats["clustering"] = float(nx.average_clustering(und))
    return stats
