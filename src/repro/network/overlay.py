"""The overlay population: membership, neighbour assignment, discovery.

The overlay is the shared ground truth the per-node processes act on.  It
owns the id space, the online set and the membership trace; it also
provides the *discovery service* a real P2P system would implement with a
bootstrap/rendezvous mechanism: sampling random online peers to (re)fill a
neighbour set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.network.node import NodeState, PeerNode
from repro.network.trace import NetworkTrace


@dataclass
class Overlay:
    """Population of :class:`PeerNode` with join/leave bookkeeping.

    Parameters
    ----------
    rng:
        Source of randomness for neighbour sampling and discovery.
    degree:
        Neighbour-set size ``d`` each node maintains (paper default 5).
    """

    rng: np.random.Generator
    degree: int = 5
    nodes: Dict[int, PeerNode] = field(default_factory=dict)
    trace: NetworkTrace = field(default_factory=NetworkTrace)
    _online: Set[int] = field(default_factory=set)
    _next_id: int = 0
    #: Monotonic counter advanced on every online-set change (join /
    #: leave / depart).  Array-backed views
    #: (:class:`repro.core.kernels.WorldArrays`) and per-attempt liveness
    #: snapshots compare a remembered value against this to detect
    #: mid-round churn (e.g. an injected forwarder crash) without
    #: re-reading the whole online set.
    liveness_version: int = field(default=0, repr=False)
    #: Monotonic counter advanced whenever *any* member node's neighbour
    #: set changes (pushed by ``PeerNode._topology_listener``, wired at
    #: :meth:`spawn_node`).  Lets array-backed views answer "is my CSR
    #: topology stale?" in O(1); nodes inserted into ``nodes`` without
    #: going through :meth:`spawn_node` are not wired, which observers
    #: must detect (:meth:`repro.core.kernels.WorldArrays` falls back to
    #: the per-node version scan unless every snapshot node was wired).
    topology_version: int = field(default=0, repr=False)
    #: Sorted online-id array cache backing :meth:`sample_peers`
    #: (rebuilt when ``liveness_version`` moves).
    _online_array: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _online_array_version: int = field(default=-1, repr=False, compare=False)

    def __post_init__(self):
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")

    def _on_topology_change(self) -> None:
        self.topology_version += 1

    # -- population construction ----------------------------------------
    def spawn_node(
        self,
        malicious: bool = False,
        participation_cost: float = 1.0,
    ) -> PeerNode:
        """Create (but do not yet join) a new node with a fresh id."""
        node = PeerNode(
            node_id=self._next_id,
            degree=self.degree,
            malicious=malicious,
            participation_cost=participation_cost,
        )
        node._topology_listener = self._on_topology_change
        self._next_id += 1
        self.nodes[node.node_id] = node
        return node

    def bootstrap(
        self,
        n: int,
        now: float = 0.0,
        malicious_fraction: float = 0.0,
        participation_cost: float = 1.0,
    ) -> List[PeerNode]:
        """Create ``n`` nodes, bring them online and wire neighbour sets.

        A fraction ``malicious_fraction`` of the nodes (chosen uniformly at
        random) is flagged as adversarial.  Each node gets ``degree``
        distinct random neighbours (fewer only if the population is too
        small).
        """
        if n < 2:
            raise ValueError(f"need at least 2 nodes, got {n}")
        if not 0.0 <= malicious_fraction <= 1.0:
            raise ValueError(f"malicious_fraction out of range: {malicious_fraction}")
        created = [
            self.spawn_node(participation_cost=participation_cost) for _ in range(n)
        ]
        n_bad = int(round(malicious_fraction * n))
        for node in self.rng.choice(created, size=n_bad, replace=False):
            node.malicious = True
        for node in created:
            self.join(node.node_id, now)
        wanted = min(self.degree, len(self._online) - 1)
        for node in created:
            node.set_neighbors(self.sample_peers(wanted, exclude={node.node_id}))
        return created

    # -- membership -------------------------------------------------------
    def join(self, node_id: int, now: float) -> None:
        """Bring a node online (start of a session)."""
        node = self.nodes[node_id]
        node.go_online(now)
        self._online.add(node_id)
        self.liveness_version += 1
        self.trace.join(now, node_id)
        if not node.neighbors and len(self._online) > 1:
            wanted = min(self.degree, len(self._online) - 1)
            node.set_neighbors(self.sample_peers(wanted, exclude={node_id}))

    def leave(self, node_id: int, now: float) -> None:
        """Take a node offline (end of a session; may rejoin later)."""
        node = self.nodes[node_id]
        node.go_offline(now)
        self._online.discard(node_id)
        self.liveness_version += 1
        self.trace.leave(now, node_id)

    def depart(self, node_id: int, now: float) -> None:
        """Remove a node permanently (final departure)."""
        node = self.nodes[node_id]
        was_online = node.is_online
        node.depart(now)
        self._online.discard(node_id)
        self.liveness_version += 1
        if was_online:
            self.trace.depart(now, node_id)

    # -- queries -----------------------------------------------------------
    def is_online(self, node_id: int) -> bool:
        return node_id in self._online

    def online_ids(self) -> List[int]:
        """Ids of all online nodes, sorted for determinism."""
        return sorted(self._online)

    def online_count(self) -> int:
        return len(self._online)

    def id_space(self) -> int:
        """Size of the id space: every node id ever issued is strictly
        below this.  The right ``size`` for :meth:`online_mask` when the
        mask must cover arbitrary neighbour references."""
        return self._next_id

    def online_mask(self, size: int) -> np.ndarray:
        """Boolean liveness vector indexed by node id (``mask[i]`` iff node
        ``i`` is online).  ``size`` must cover the id space the caller
        indexes with; ids at or beyond ``size`` are ignored.  Used by the
        array-backed scoring kernels to vectorise the liveness filter."""
        mask = np.zeros(size, dtype=bool)
        if self._online:
            ids = np.fromiter(
                self._online, dtype=np.int64, count=len(self._online)
            )
            mask[ids[ids < size]] = True
        return mask

    def good_nodes(self) -> List[PeerNode]:
        """All non-malicious nodes ever created."""
        return [n for n in self.nodes.values() if not n.malicious]

    def malicious_nodes(self) -> List[PeerNode]:
        return [n for n in self.nodes.values() if n.malicious]

    # -- discovery -----------------------------------------------------------
    def sample_peers(self, k: int, exclude: Optional[Iterable[int]] = None) -> List[int]:
        """``k`` distinct random online peers, excluding ``exclude``.

        Raises if fewer than ``k`` candidates exist — callers decide how to
        degrade (the prober retries next round).
        """
        banned = set(exclude or ())
        arr = self._sorted_online()
        if banned:
            # Same pool the listcomp built (sorted online minus banned),
            # assembled without the O(n) Python loop: locate each banned
            # id by bisection and mask it out.
            ban = np.fromiter(sorted(banned), dtype=np.int64, count=len(banned))
            pos = np.searchsorted(arr, ban)
            in_range = pos < arr.size
            pos = pos[in_range]
            present = arr[pos] == ban[in_range]
            if present.any():
                keep = np.ones(arr.size, dtype=bool)
                keep[pos[present]] = False
                arr = arr[keep]
        if arr.size < k:
            raise ValueError(f"cannot sample {k} peers from pool of {arr.size}")
        # Generator.choice converts a Python list to exactly this int64
        # array before drawing, so handing it the array directly consumes
        # identical entropy and returns identical picks.
        picked = self.rng.choice(arr, size=k, replace=False)
        return picked.tolist()

    def _sorted_online(self) -> np.ndarray:
        """Sorted online ids as an int64 array, cached per liveness epoch."""
        if (
            self._online_array is None
            or self._online_array_version != self.liveness_version
        ):
            arr = np.fromiter(
                self._online, dtype=np.int64, count=len(self._online)
            )
            arr.sort()
            self._online_array = arr
            self._online_array_version = self.liveness_version
        return self._online_array

    def random_online_peer(self, exclude: Optional[Iterable[int]] = None) -> Optional[int]:
        """One random online peer, or None if no candidate exists."""
        try:
            return self.sample_peers(1, exclude=exclude)[0]
        except ValueError:
            return None

    def __len__(self) -> int:
        return len(self.nodes)
