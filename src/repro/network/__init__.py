"""P2P overlay substrate: peers, neighbour sets, churn, probing, bandwidth.

This package models the forwarding infrastructure the paper's incentive
mechanism runs on:

- :class:`~repro.network.node.PeerNode` — a peer with a fixed-size
  neighbour set ``D(s)``, per-neighbour observed session-time counters and
  the availability estimate of §2.3.
- :class:`~repro.network.overlay.Overlay` — the population: join/leave
  bookkeeping, neighbour assignment and replacement discovery, true
  availability accounting (session time / lifetime).
- :class:`~repro.network.churn.ChurnModel` /
  :func:`~repro.network.churn.churn_process` — Poisson joins, Pareto
  session times (60-minute median), exponential off-times, permanent
  departures (free-riding model).
- :class:`~repro.network.probing.ActiveProber` — periodic liveness probing
  that maintains the §2.3 availability estimator.
- :class:`~repro.network.bandwidth.BandwidthModel` — symmetric per-link
  bandwidths; transmission cost ``C_t = b·l`` with per-unit cost inversely
  proportional to link bandwidth.
- :class:`~repro.network.trace.NetworkTrace` — time-stamped join/leave
  record used by the intersection-attack analysis.
"""

from repro.network.bandwidth import BandwidthModel
from repro.network.churn import ChurnModel, churn_process
from repro.network.dot import overlay_to_dot, paths_to_dot
from repro.network.estimators import SessionObserver, pareto_mle, pareto_mle_censored
from repro.network.gossip import GossipMembership, PartialView
from repro.network.node import NeighborView, NodeState, PeerNode
from repro.network.overlay import Overlay
from repro.network.probing import ActiveProber, run_probe_round
from repro.network.topology import TOPOLOGIES, build_topology, install_topology
from repro.network.trace import NetworkTrace, TraceEvent
from repro.network.transport import (
    Message,
    MessageKind,
    TransportNetwork,
    measure_path_latency,
)

__all__ = [
    "ActiveProber",
    "BandwidthModel",
    "ChurnModel",
    "GossipMembership",
    "Message",
    "MessageKind",
    "NeighborView",
    "NetworkTrace",
    "NodeState",
    "Overlay",
    "PartialView",
    "PeerNode",
    "SessionObserver",
    "TOPOLOGIES",
    "TraceEvent",
    "TransportNetwork",
    "build_topology",
    "churn_process",
    "install_topology",
    "measure_path_latency",
    "overlay_to_dot",
    "pareto_mle",
    "pareto_mle_censored",
    "paths_to_dot",
    "run_probe_round",
]
