"""Active probing: the §2.3 availability estimator.

"At the start of each probing period a peer *s* checks the liveness of
each neighbor.  If the neighbor is alive, its session time is updated as
``t_new = t_old + T``.  If a new neighbor is found, its session time is
updated as ``t_new = rand(0, T)``."

Dead (offline or departed) neighbours are replaced via the overlay's
discovery service; replacements start with a uniform ``rand(0, T)``
counter, exactly as the paper specifies for newly found neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.network.overlay import Overlay
from repro.obs.events import EventBus
from repro.obs.tracing import NULL_TRACER
from repro.sim.engine import Environment
from repro.sim.faults import FaultInjector, RetryPolicy


def _probe_alive(
    injector: "Optional[FaultInjector]",
    retry: "Optional[RetryPolicy]",
    bus: "Optional[EventBus]" = None,
    prober_id: "Optional[int]" = None,
    neighbor: "Optional[int]" = None,
) -> bool:
    """One fault-aware liveness check of an *actually live* neighbour.

    Without an injector the probe always succeeds.  With one, the first
    attempt may time out; the retry policy then governs how many re-probes
    are sent before the neighbour is (wrongly) declared dead.  Probes are
    sub-second traffic against minute-scale periods, so retries cost no
    simulated time — only randomness and counters.

    ``bus`` (when given) records each re-probe as ``probe.retry`` and the
    final false declaration as ``probe.timeout``; ``node`` on both events
    is the probed *neighbour*, ``prober`` in the data is the probing peer.
    """
    if injector is None or not injector.probe_times_out():
        return True
    if retry is not None:
        for _ in range(retry.max_retries):
            injector.stats.probe_retries += 1
            if bus is not None:
                bus.emit("probe.retry", node=neighbor, prober=prober_id)
            if not injector.probe_times_out():
                return True
    if bus is not None:
        bus.emit("probe.timeout", node=neighbor, prober=prober_id)
    return False


def run_probe_round(
    overlay: Overlay,
    node_id: int,
    period: float,
    rng: np.random.Generator,
    now: float,
    replace_dead: bool = True,
    discovery: "Callable[[int, tuple], Optional[int]] | None" = None,
    fault_injector: "Optional[FaultInjector]" = None,
    retry: "Optional[RetryPolicy]" = None,
    bus: "Optional[EventBus]" = None,
    online_mask: "Optional[np.ndarray]" = None,
) -> dict:
    """One probing round for one node.  Returns a small stats dict.

    - live neighbour: counter += ``period``;
    - dead neighbour: dropped and (if possible) replaced by a discovered
      online peer whose counter starts at ``rand(0, period)``.

    ``discovery(node_id, exclude)`` overrides the replacement source —
    pass :meth:`repro.network.gossip.GossipMembership.discover` for fully
    decentralised discovery; the default is the overlay's bootstrap
    oracle.

    ``fault_injector`` may time out probes of live neighbours; ``retry``
    governs re-probes before such a neighbour is declared dead (and then
    replaced like a genuinely dead one — a false positive the §2.3
    estimator has to absorb).  The returned dict gains a ``timed_out``
    count for those false declarations.

    ``online_mask`` (an :meth:`Overlay.online_mask` vector covering
    :meth:`Overlay.id_space`) lets a sweep over many nodes share one
    liveness snapshot.  Without a fault injector the whole round then
    runs array-native: liveness is one gather, all live credits land in
    one batched counter update (single cache invalidation), and only
    dead neighbours fall back to per-id replacement.  Equivalent to the
    per-neighbour loop — fault-free probes draw no randomness, credits
    never change membership, and dead neighbours are processed in their
    original relative order, so every replacement sees the same
    exclusion set and the same RNG stream.
    """
    if period <= 0:
        raise ValueError(f"probe period must be positive, got {period}")
    node = overlay.nodes[node_id]

    def find_replacement() -> "Optional[int]":
        exclude = (node_id, *node.neighbors)
        if discovery is not None:
            return discovery(node_id, exclude)
        return overlay.random_online_peer(exclude=exclude)

    def replace_one(nbr_id: int) -> int:
        node.remove_neighbor(nbr_id)
        if not replace_dead:
            return 0
        candidate = find_replacement()
        if candidate is None:
            return 0
        node.add_neighbor(
            candidate, initial_session_time=float(rng.uniform(0.0, period))
        )
        return 1

    alive = dead = replaced = timed_out = 0
    if fault_injector is None and node.neighbors:
        # Fault-free fast path: probes always succeed, so liveness alone
        # partitions the neighbour set and no per-probe RNG is drawn.
        ids = np.fromiter(
            node.neighbors, dtype=np.int64, count=len(node.neighbors)
        )
        top = int(ids.max()) + 1
        if online_mask is None or online_mask.size < top:
            online_mask = overlay.online_mask(max(overlay.id_space(), top))
        live = online_mask[ids]
        live_ids = ids[live]
        node.credit_session_times(live_ids.tolist(), period, now=now)
        alive = int(live_ids.size)
        for nbr_id in ids[~live].tolist():
            dead += 1
            replaced += replace_one(nbr_id)
    elif fault_injector is not None:
        for nbr_id in list(node.neighbors):
            if overlay.is_online(nbr_id) and _probe_alive(
                fault_injector, retry, bus=bus, prober_id=node_id, neighbor=nbr_id
            ):
                # Route the counter update through the node so its cached
                # availability normalisation is invalidated.
                node.credit_session_time(nbr_id, period, now=now)
                alive += 1
            else:
                if overlay.is_online(nbr_id):
                    timed_out += 1  # live neighbour lost to probe timeouts
                dead += 1
                replaced += replace_one(nbr_id)
    # Top up if the set shrank below the target degree in earlier rounds.
    if replace_dead:
        while len(node.neighbors) < node.degree:
            candidate = find_replacement()
            if candidate is None:
                break
            node.add_neighbor(
                candidate, initial_session_time=float(rng.uniform(0.0, period))
            )
            replaced += 1
    return {"alive": alive, "dead": dead, "replaced": replaced, "timed_out": timed_out}


def fast_full_sweep(overlay: Overlay, period: float, now: float) -> "Optional[dict]":
    """Whole-population probe sweep for the steady state: everyone
    online, every neighbour set at target degree.

    Under those preconditions every probe of every node succeeds, no
    neighbour is replaced, no top-up runs and **no RNG is drawn** — the
    sweep reduces to "credit every neighbour view by ``period`` and
    invalidate each node's availability cache once", which is exactly
    what :func:`run_probe_round`'s fast path does per node, minus the
    per-node staging.  Returns the sweep totals, or ``None`` when the
    preconditions do not hold (caller falls back to the per-node loop).
    Eligibility is checked over the whole population *before* any
    counter moves, so a ``None`` return leaves the overlay untouched.
    """
    nodes = overlay.nodes
    if not nodes or overlay.online_count() != len(nodes):
        return None
    for node in nodes.values():
        if len(node.neighbors) < node.degree:
            return None
    alive = 0
    for node in nodes.values():
        views = node.neighbors.values()
        for view in views:
            view._session_time += period
            view.last_seen = now
        alive += len(views)
        node._invalidate_availability()
    return {
        "alive": alive,
        "dead": 0,
        "replaced": 0,
        "timed_out": 0,
        "probed": len(nodes),
    }


@dataclass
class ActiveProber:
    """Periodic probing process for the whole population.

    A single process probes every online node each ``period`` minutes —
    equivalent to per-node probe processes with aligned phases, but one
    heap entry instead of N.
    """

    overlay: Overlay
    period: float
    rng: np.random.Generator
    #: Optional decentralised discovery backend (see run_probe_round).
    discovery: "Callable[[int, tuple], Optional[int]] | None" = None
    #: Optional per-period hook (e.g. GossipMembership.run_round).
    on_period: "Callable[[], object] | None" = None
    #: Optional fault source (probe timeouts) and re-probe policy.
    fault_injector: "Optional[FaultInjector]" = None
    retry: "Optional[RetryPolicy]" = None
    #: Optional observability sinks.  Per-probe "send" events would be the
    #: chattiest channel in the system (N*d per period), so the bus gets
    #: one aggregate ``probe.sweep`` event per period instead, and the
    #: tracer one ``probe.sweep`` span around the whole sweep.
    bus: "Optional[EventBus]" = None
    tracer: object = NULL_TRACER
    #: Notified with ``period`` after each :func:`fast_full_sweep` that
    #: actually ran — the sharded engine mirrors the uniform credit into
    #: its shared session matrix without re-reading any node object.
    sweep_listener: "Callable[[float], None] | None" = None
    rounds_run: int = 0

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError(f"probe period must be positive, got {self.period}")

    def run(self, env: Environment):
        """Generator process: probe all online nodes every ``period``."""
        while True:
            yield env.timeout(self.period)
            # The sweep itself is synchronous (no yields), so it may be
            # wrapped in one span per period.
            with self.tracer.span("probe.sweep"):
                if self.on_period is not None:
                    self.on_period()
                swept = None
                if self.fault_injector is None and self.discovery is None:
                    swept = fast_full_sweep(self.overlay, self.period, env.now)
                if swept is not None:
                    probed = swept.pop("probed")
                    totals = swept
                    if self.sweep_listener is not None:
                        self.sweep_listener(self.period)
                else:
                    totals = {"alive": 0, "dead": 0, "replaced": 0, "timed_out": 0}
                    probed = 0
                    # One liveness snapshot for the whole sweep: the sweep
                    # is synchronous (no yields), so membership only
                    # changes through the sweep's own replacements — and
                    # those are drawn from the online set, never flipping
                    # a mask bit.
                    online_mask = self.overlay.online_mask(
                        self.overlay.id_space()
                    )
                    for node_id in self.overlay.online_ids():
                        stats = run_probe_round(
                            self.overlay,
                            node_id,
                            self.period,
                            self.rng,
                            env.now,
                            discovery=self.discovery,
                            fault_injector=self.fault_injector,
                            retry=self.retry,
                            bus=self.bus,
                            online_mask=online_mask,
                        )
                        for key in totals:
                            totals[key] += stats[key]
                        probed += 1
                if self.bus is not None:
                    self.bus.emit("probe.sweep", probed=probed, **totals)
            self.rounds_run += 1
