"""Whole-program view for project-aware lint rules.

One :class:`ProjectContext` is built per ``lint_paths`` run from every
parsed file.  It offers the three structures the interprocedural rules
need:

- a **module graph**: which project modules import which (module scope
  and deferred function-scope imports both count — an import is an
  import for reachability purposes);
- a **symbol table**: every top-level function, class, and method keyed
  by dotted qualname (``repro.core.protocol.PathBuilder.build_round``),
  plus per-module maps of module-level mutable state and fork-hazardous
  ambient objects (open file handles, sockets, locks);
- a conservative **call graph**: direct calls resolved through the
  per-file import alias maps, method calls on locally-inferred receiver
  types (``x = PathBuilder(...)`` / annotated parameters / ``self`` /
  ``self.attr`` set in any method), ``functools.partial`` unwrapping,
  and callables handed to executors (``pool.submit(fn, ...)``,
  ``pool.map(fn, ...)``, ``run_fleet(..., worker=fn)``) — the last also
  feeds the worker-entrypoint set of the CONC rules.

Soundness posture: the graph *over*-approximates calls where the
receiver is known or the method name is distinctive, and deliberately
*drops* edges where name-matching would flood the graph (ubiquitous
method names such as ``get``/``items``/``append``, or a fallback with
more than :data:`MAX_NAME_FALLBACK` same-named candidates).  Rules built
on reachability therefore miss some exotic dispatch (documented in
docs/STATIC_ANALYSIS.md) but stay quiet enough to gate CI.  Everything
is computed from the ASTs already parsed for the per-file rules; no
code is imported or executed.
"""

from __future__ import annotations

import ast
import json
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.astutils import dotted_name
from repro.analysis.context import FileContext

#: Schema stamp written into (and required of) ``api-surface.json``.
API_SURFACE_SCHEMA = "repro-lint/api-surface-v1"

#: Simulation hot-path entry points for DET005 reachability.  These are
#: the functions whose transitive callees decide seed -> result; a
#: wall-clock read or global RNG draw anywhere below them taints the
#: reproduction claim even when it sits lexically outside the DET002
#: module scopes.
SIM_HOT_ENTRY_POINTS = frozenset(
    {
        "repro.experiments.scenario.run_scenario",
        "repro.core.protocol.PathBuilder.build_round",
        "repro.core.protocol.PathBuilder.build_round_with_retry",
        "repro.core.kernels.BatchPlanner.prepare",
        "repro.core.kernels.WorldArrays.ensure_fresh",
    }
)

#: Known pool-worker entry points for CONC002 (extended at build time
#: with every callable the project is seen submitting to an executor).
WORKER_ENTRY_POINTS = frozenset(
    {
        "repro.fleet.executor.execute_job",
        "repro.experiments.scenario.run_scenario",
        "repro.sim.shard.shard_worker_main",
    }
)

#: Executor methods that take a callable first argument.
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)

#: Receiver names accepted as "an executor/pool" when no local type is
#: known (``pool.submit`` in a helper that received the pool as an arg).
_EXECUTORISH = ("pool", "executor", "exec")

#: Fully qualified executor constructors (locally-typed receivers).
_EXECUTOR_CLASSES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Constructors whose results must never ride ambiently into a forked /
#: spawned pool worker: OS handles and synchronisation primitives do not
#: pickle, and under fork they alias live parent state (shared file
#: offsets, half-held locks).  ``kind`` strings are used in messages.
_UNPICKLABLE_CONSTRUCTORS: Mapping[str, str] = {
    "open": "open file handle",
    "socket.socket": "live socket",
    "socket.create_connection": "live socket",
    "threading.local": "threading.local",
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition variable",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "subprocess.Popen": "live subprocess handle",
    "repro.obs.events.RunTrace": "file-backed tracer",
    "repro.obs.tracing.SpanTracer": "tracer",
}

#: Constructors producing module-level *mutable* state tracked by
#: CONC002 (writes through these from worker-reachable code diverge
#: silently per process).
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)

#: Methods that mutate a list/set/dict receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

#: Method names too ubiquitous for name-based fallback resolution: an
#: edge to *every* ``get`` in the project would connect everything to
#: everything and drown the reachability rules.
_FALLBACK_BLOCKLIST = frozenset(
    {
        "get",
        "items",
        "keys",
        "values",
        "append",
        "add",
        "update",
        "pop",
        "copy",
        "close",
        "read",
        "write",
        "sort",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "format",
        "extend",
        "remove",
        "clear",
        "setdefault",
        "tolist",
        "item",
        "sum",
        "mean",
        "run",
    }
)

#: Name-fallback precision cutoff: a method name with more same-named
#: definitions than this resolves to nothing (documented imprecision)
#: rather than to everything.
MAX_NAME_FALLBACK = 6


class Submission:
    """One callable handed to an executor (or ``run_fleet``)."""

    __slots__ = ("node", "callable_node", "arg_nodes", "via", "targets")

    def __init__(
        self,
        node: ast.Call,
        callable_node: ast.expr,
        arg_nodes: List[ast.expr],
        via: str,
    ):
        self.node = node
        self.callable_node = callable_node
        #: Non-callable arguments shipped with the task (must pickle too).
        self.arg_nodes = arg_nodes
        #: How it was submitted: ``pool.submit``, ``run_fleet(worker=)``...
        self.via = via
        #: Resolved candidate qualnames of the callable (pass 2).
        self.targets: Tuple[str, ...] = ()


class FunctionInfo:
    """One function/method (or a module's top-level body) in the graph."""

    __slots__ = (
        "qualname",
        "module",
        "name",
        "node",
        "lineno",
        "class_name",
        "is_async",
        "is_nested",
        "calls",
        "submissions",
        "_loaded_names",
    )

    def __init__(
        self,
        qualname: str,
        module: str,
        name: str,
        node: ast.AST,
        class_name: Optional[str],
        is_nested: bool,
    ):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.node = node
        self.lineno = getattr(node, "lineno", 1)
        self.class_name = class_name
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.is_nested = is_nested
        #: Resolved callee qualnames (pass 2), sorted and de-duplicated.
        self.calls: Tuple[str, ...] = ()
        self.submissions: List[Submission] = []
        self._loaded_names: Optional[FrozenSet[str]] = None

    def own_body(self) -> List[ast.stmt]:
        """Statements executed when this function runs (module body for
        the ``<module>`` pseudo-function)."""
        return list(getattr(self.node, "body", []))

    def loaded_names(self) -> FrozenSet[str]:
        """Plain names read anywhere in the body (nested scopes included
        — a closure captures them, which is exactly what matters for the
        fork-safety rules)."""
        if self._loaded_names is None:
            out: Set[str] = set()
            for stmt in self.own_body():
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        out.add(sub.id)
            self._loaded_names = frozenset(out)
        return self._loaded_names


class ClassInfo:
    """One class: its methods and locally-known attribute types."""

    __slots__ = ("qualname", "module", "name", "node", "methods", "attr_types")

    def __init__(self, qualname: str, module: str, name: str, node: ast.ClassDef):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.node = node
        #: method name -> function qualname
        self.methods: Dict[str, str] = {}
        #: ``self.<attr>`` -> class qualname (from ``self.x = Cls(...)``).
        self.attr_types: Dict[str, str] = {}


class ModuleInfo:
    """Per-module symbol summary consumed by the CONC rules."""

    __slots__ = ("module", "ctx", "mutable_globals", "hazard_globals", "toplevel")

    def __init__(self, module: str, ctx: FileContext):
        self.module = module
        self.ctx = ctx
        #: name -> (lineno, constructor) for module-level dict/list/set state.
        self.mutable_globals: Dict[str, Tuple[int, str]] = {}
        #: name -> (lineno, kind) for fork-hazardous module-level objects.
        self.hazard_globals: Dict[str, Tuple[int, str]] = {}
        #: top-level def/class name -> qualname.
        self.toplevel: Dict[str, str] = {}


class ProjectContext:
    """The whole-program view handed to project-aware rules.

    Construction is two-pass: pass 1 walks every file collecting
    symbols, module summaries, and unresolved call sites; pass 2
    resolves call sites against the full symbol table into the call
    graph.  All iteration orders are sorted, so two builds over the same
    tree produce identical graphs (and identical findings) regardless of
    discovery order.
    """

    def __init__(
        self,
        contexts: Iterable[FileContext],
        api_surface_path: Optional[Path] = None,
    ):
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> project modules it imports (module graph).
        self.module_imports: Dict[str, Set[str]] = {}
        self._method_index: Dict[str, List[str]] = {}
        self._reach_cache: Dict[FrozenSet[str], Dict[str, str]] = {}
        self._worker_entrypoints: Optional[FrozenSet[str]] = None

        for ctx in sorted(contexts, key=lambda c: c.module):
            if ctx.module in self.modules:
                continue  # duplicate module name (scratch copies): first wins
            self._collect(ctx)
        self._resolve_all()

        self.api_surface_path = api_surface_path
        self.api_snapshot: Optional[Dict[str, object]] = None
        if api_surface_path is not None and api_surface_path.exists():
            self.api_snapshot = _load_api_snapshot(api_surface_path)

    # -- pass 1: symbol collection ---------------------------------------
    def _collect(self, ctx: FileContext) -> None:
        module = ctx.module
        info = ModuleInfo(module, ctx)
        self.modules[module] = info

        pseudo = FunctionInfo(
            f"{module}.<module>", module, "<module>", ctx.tree, None, False
        )
        self.functions[pseudo.qualname] = pseudo

        def walk(
            body: List[ast.stmt],
            prefix: str,
            class_info: Optional[ClassInfo],
            nested: bool,
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{stmt.name}"
                    fn = FunctionInfo(
                        qual,
                        module,
                        stmt.name,
                        stmt,
                        class_info.name if class_info else None,
                        nested,
                    )
                    self.functions[qual] = fn
                    if class_info is not None and not nested:
                        class_info.methods[stmt.name] = qual
                        self._method_index.setdefault(stmt.name, []).append(qual)
                    elif not nested:
                        info.toplevel[stmt.name] = qual
                    walk(stmt.body, f"{qual}.", None, True)
                elif isinstance(stmt, ast.ClassDef):
                    qual = f"{prefix}{stmt.name}"
                    cls = ClassInfo(qual, module, stmt.name, stmt)
                    self.classes[qual] = cls
                    if class_info is None and not nested:
                        info.toplevel[stmt.name] = qual
                    walk(stmt.body, f"{qual}.", cls, nested)
                else:
                    # Nested compound statements can hide defs (e.g. a
                    # version-guarded class); recurse through them.
                    for block in _stmt_blocks(stmt):
                        walk(block, prefix, class_info, nested)

        walk(ctx.tree.body, f"{module}.", None, False)
        self._collect_module_globals(info)
        self._collect_attr_types(info)

    def _collect_module_globals(self, info: ModuleInfo) -> None:
        ctx = info.ctx
        for stmt in ctx.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            ctor = self._constructor_of(ctx, value)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                      ast.ListComp, ast.SetComp)):
                    info.mutable_globals[target.id] = (stmt.lineno, "literal")
                elif ctor in _MUTABLE_CONSTRUCTORS:
                    info.mutable_globals[target.id] = (stmt.lineno, ctor)
                elif ctor in _UNPICKLABLE_CONSTRUCTORS:
                    info.hazard_globals[target.id] = (
                        stmt.lineno,
                        _UNPICKLABLE_CONSTRUCTORS[ctor],
                    )

    def _collect_attr_types(self, info: ModuleInfo) -> None:
        """``self.x = Cls(...)`` anywhere in a class body -> attr type."""
        for cls in self.classes.values():
            if cls.module != info.module:
                continue
            for sub in ast.walk(cls.node):
                if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                resolved = self._resolve_class_expr(info.ctx, sub.value)
                if resolved is not None:
                    cls.attr_types.setdefault(target.attr, resolved)

    def _constructor_of(self, ctx: FileContext, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        root = ctx.imports.get(head)
        return f"{root}.{rest}" if (root and rest) else (root or name)

    def _resolve_class_expr(self, ctx: FileContext, value: ast.expr) -> Optional[str]:
        """Class qualname when ``value`` is ``SomeProjectClass(...)``."""
        if not isinstance(value, ast.Call):
            return None
        return self._resolve_class_name(ctx, dotted_name(value.func))

    def _resolve_class_name(
        self, ctx: FileContext, name: Optional[str]
    ) -> Optional[str]:
        if name is None:
            return None
        for candidate in self._qualify(ctx, name):
            if candidate in self.classes:
                return candidate
        return None

    def _qualify(self, ctx: FileContext, name: str) -> List[str]:
        """Candidate qualnames for a dotted name used in ``ctx``."""
        head, _, rest = name.partition(".")
        out: List[str] = []
        resolved = ctx.imports.get(head)
        if resolved is not None:
            out.append(f"{resolved}.{rest}" if rest else resolved)
        out.append(f"{ctx.module}.{name}")  # same-module symbol
        out.append(name)  # already fully qualified
        return out

    def _module_edge(self, target: str) -> str:
        """The module a project import target lands in.

        ``from repro.util import helper`` records the target
        ``repro.util.helper``; the edge belongs to ``repro.util``.  Trim
        trailing symbol components until a collected module matches;
        unknown targets (files outside this run) keep their raw name.
        """
        mod = target
        while mod:
            if mod in self.modules:
                return mod
            if "." not in mod:
                break
            mod = mod.rpartition(".")[0]
        return target

    # -- pass 2: call resolution ------------------------------------------
    def _resolve_all(self) -> None:
        # The module graph needs the full module set, so it is an early
        # pass-2 step rather than part of per-file collection.
        for module, info in self.modules.items():
            self.module_imports[module] = {
                self._module_edge(target)
                for target in info.ctx.imports.values()
                if _project_module(target)
            }
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            resolver = _CallResolver(self, fn)
            resolver.run()
            fn.calls = tuple(sorted(resolver.edges))
            fn.submissions = resolver.submissions

    # -- queries -----------------------------------------------------------
    def reachable_from(self, seeds: Iterable[str]) -> Dict[str, str]:
        """BFS closure over the call graph.

        Returns ``{reached qualname: witness seed}`` — the (sorted-order
        first) entry point that reaches each function, used in finding
        messages.  Seeds not present in the project are ignored.
        """
        key = frozenset(seeds)
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        witness: Dict[str, str] = {}
        frontier: List[str] = []
        for seed in sorted(key):
            if seed in self.functions and seed not in witness:
                witness[seed] = seed
                frontier.append(seed)
        while frontier:
            nxt: List[str] = []
            for qual in frontier:
                for callee in self.functions[qual].calls:
                    if callee not in witness:
                        witness[callee] = witness[qual]
                        nxt.append(callee)
            frontier = sorted(nxt)
        self._reach_cache[key] = witness
        return witness

    def worker_entrypoints(self) -> FrozenSet[str]:
        """Known worker entry points plus every submitted callable."""
        if self._worker_entrypoints is None:
            points: Set[str] = {
                q for q in WORKER_ENTRY_POINTS if q in self.functions
            }
            for fn in self.functions.values():
                for sub in fn.submissions:
                    points.update(t for t in sub.targets if t in self.functions)
            self._worker_entrypoints = frozenset(points)
        return self._worker_entrypoints

    def functions_in(self, module: str) -> List[FunctionInfo]:
        return sorted(
            (f for f in self.functions.values() if f.module == module),
            key=lambda f: (f.lineno, f.qualname),
        )

    def function_for_node(self, module: str, node: ast.AST) -> Optional[FunctionInfo]:
        for fn in self.functions.values():
            if fn.module == module and fn.node is node:
                return fn
        return None

    # -- API surface -------------------------------------------------------
    def api_surface(self) -> Dict[str, object]:
        """The public API of every ``repro.*`` module, JSON-ready.

        Functions and methods carry their full signature (so a changed
        default or a new required argument is drift); classes list their
        public methods; module-level ``UPPER_CASE``/plain public
        assignments are recorded by name.
        """
        modules: Dict[str, object] = {}
        for mod in sorted(self.modules):
            if not (mod == "repro" or mod.startswith("repro.")):
                continue
            if any(part.startswith("_") for part in mod.split(".")):
                continue
            modules[mod] = self._module_surface(self.modules[mod])
        return {"schema": API_SURFACE_SCHEMA, "modules": modules}

    def _module_surface(self, info: ModuleInfo) -> Dict[str, object]:
        functions: Dict[str, str] = {}
        classes: Dict[str, Dict[str, str]] = {}
        constants: List[str] = []
        for stmt in info.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not stmt.name.startswith("_"):
                    functions[stmt.name] = _signature(stmt)
            elif isinstance(stmt, ast.ClassDef):
                if stmt.name.startswith("_"):
                    continue
                methods: Dict[str, str] = {}
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not sub.name.startswith("_") or sub.name == "__init__":
                            methods[sub.name] = _signature(sub)
                classes[stmt.name] = methods
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        constants.append(target.id)
        return {
            "functions": functions,
            "classes": classes,
            "constants": sorted(set(constants)),
        }


class _CallResolver:
    """Resolves one function's call sites against the project symbols."""

    def __init__(self, project: ProjectContext, fn: FunctionInfo):
        self.project = project
        self.fn = fn
        self.ctx = project.modules[fn.module].ctx
        self.edges: Set[str] = set()
        self.submissions: List[Submission] = []
        #: local name -> class qualname (flow-insensitive).
        self.var_types: Dict[str, str] = {}
        #: local name -> hazard kind (``h = open(...)``).
        self.hazard_vars: Dict[str, str] = {}
        #: local names bound to a lambda / nested def.
        self.local_callables: Set[str] = set()
        #: local names bound to an executor instance.
        self.executor_vars: Set[str] = set()

    def run(self) -> None:
        if self.fn.class_name is not None:
            cls = self._own_class()
            if cls is not None:
                self.var_types["self"] = cls.qualname
        # Walk the function node itself: _walk_own_scope treats nested
        # defs as opaque children, so the <module> pseudo-function sees
        # only true module-level statements (not every function body).
        for node in _walk_own_scope(self.fn.node):
            self._collect_locals(node)
        self._collect_params()
        for node in _walk_own_scope(self.fn.node):
            if isinstance(node, ast.Call):
                self._resolve_call(node)

    def _own_class(self) -> Optional[ClassInfo]:
        qual = self.fn.qualname.rsplit(".", 1)[0]
        return self.project.classes.get(qual)

    # -- local type/hazard collection (flow-insensitive, own scope only) --
    def _collect_locals(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self._record_binding(target.id, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                self._record_binding(node.target.id, node.value)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    self._record_binding(item.optional_vars.id, item.context_expr)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not self.fn.node:
                self.local_callables.add(node.name)

    def _collect_params(self) -> None:
        """Annotated parameters give receiver types for free."""
        args = getattr(self.fn.node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.annotation is not None:
                    resolved = self.project._resolve_class_name(
                        self.ctx, dotted_name(arg.annotation)
                    )
                    if resolved is not None:
                        self.var_types.setdefault(arg.arg, resolved)

    def _record_binding(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Lambda):
            self.local_callables.add(name)
            return
        cls = self.project._resolve_class_expr(self.ctx, value)
        if cls is not None:
            self.var_types.setdefault(name, cls)
            return
        ctor = self.project._constructor_of(self.ctx, value)
        if ctor in _UNPICKLABLE_CONSTRUCTORS:
            self.hazard_vars.setdefault(name, _UNPICKLABLE_CONSTRUCTORS[ctor])
        elif ctor in _EXECUTOR_CLASSES:
            self.executor_vars.add(name)

    # -- call-site resolution ---------------------------------------------
    def _resolve_call(self, call: ast.Call) -> None:
        ctor = self.project._constructor_of(self.ctx, call)
        if ctor == "functools.partial" and call.args:
            # partial(f, a, b): edge to f; the partial's bound args ride
            # into whatever consumes the partial (tracked at submit sites).
            self.edges.update(self._callable_targets(call.args[0]))
        submission = self._match_submission(call)
        if submission is not None:
            submission.targets = tuple(
                sorted(self._callable_targets(submission.callable_node))
            )
            self.edges.update(submission.targets)
            self.submissions.append(submission)
        self.edges.update(self._callee_targets(call))

    def _match_submission(self, call: ast.Call) -> Optional[Submission]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            if self._is_executor_receiver(func.value) and call.args:
                return Submission(
                    call,
                    call.args[0],
                    list(call.args[1:]) + [kw.value for kw in call.keywords],
                    f"{dotted_name(func) or func.attr}()",
                )
            return None
        # run_fleet(spec, store, worker=fn)
        name = dotted_name(func)
        if name is not None:
            qualified = self.project._qualify(self.ctx, name)
            if any(
                q in ("repro.fleet.executor.run_fleet", "repro.fleet.run_fleet")
                for q in qualified
            ):
                for kw in call.keywords:
                    if kw.arg == "worker":
                        return Submission(call, kw.value, [], "run_fleet(worker=)")
        return None

    def _is_executor_receiver(self, receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name) and receiver.id in self.executor_vars:
            return True
        # Immediate use: ProcessPoolExecutor().submit / with-less chains.
        ctor = (
            self.project._constructor_of(self.ctx, receiver)
            if isinstance(receiver, ast.Call)
            else None
        )
        if ctor in _EXECUTOR_CLASSES:
            return True
        base = dotted_name(receiver)
        last = (base or "").split(".")[-1].lower()
        return any(tag in last for tag in _EXECUTORISH)

    def _callable_targets(self, expr: ast.expr) -> Set[str]:
        """Project functions a callable-valued expression may denote."""
        if isinstance(expr, ast.Call):
            ctor = self.project._constructor_of(self.ctx, expr)
            if ctor == "functools.partial" and expr.args:
                return self._callable_targets(expr.args[0])
            return set()
        name = dotted_name(expr)
        if name is None:
            return set()
        out: Set[str] = set()
        # self.method / obj.method references (unparenthesised callables).
        if isinstance(expr, ast.Attribute):
            recv = expr.value
            recv_name = dotted_name(recv)
            if recv_name is not None and recv_name in self.var_types:
                method = self._class_method(self.var_types[recv_name], expr.attr)
                if method is not None:
                    return {method}
        for candidate in self.project._qualify(self.ctx, name):
            if candidate in self.project.functions:
                out.add(candidate)
            elif candidate in self.project.classes:
                init = self.project.classes[candidate].methods.get("__init__")
                if init is not None:
                    out.add(init)
        if not out and name in self.local_callables:
            # Bound to a lambda / nested def in this scope; the nested
            # def's own qualname (if any) is the edge.
            nested = f"{self.fn.qualname}.{name}"
            if nested in self.project.functions:
                out.add(nested)
        return out

    def _callee_targets(self, call: ast.Call) -> Set[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_plain(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_method(func)
        return set()

    def _resolve_plain(self, name: str) -> Set[str]:
        if name in self.local_callables:
            nested = f"{self.fn.qualname}.{name}"
            if nested in self.project.functions:
                return {nested}
            return set()
        # Closure reference: a nested function calling a sibling defined
        # in an enclosing function's scope (qualname ancestry walk).
        if self.fn.is_nested:
            prefix = self.fn.qualname
            while "." in prefix:
                prefix = prefix.rpartition(".")[0]
                enclosing = f"{prefix}.{name}"
                if enclosing in self.project.functions:
                    return {enclosing}
                if prefix == self.fn.module:
                    break
        out: Set[str] = set()
        for candidate in self.project._qualify(self.ctx, name):
            if candidate in self.project.functions:
                out.add(candidate)
                break
            if candidate in self.project.classes:
                init = self.project.classes[candidate].methods.get("__init__")
                if init is not None:
                    out.add(init)
                break
        return out

    def _resolve_method(self, func: ast.Attribute) -> Set[str]:
        # Fully dotted: mod.sub.fn(...) through the import map.
        name = dotted_name(func)
        if name is not None:
            for candidate in self.project._qualify(self.ctx, name):
                if candidate in self.project.functions:
                    return {candidate}
                if candidate in self.project.classes:
                    init = self.project.classes[candidate].methods.get("__init__")
                    return {init} if init else set()
        # Typed receiver: self.m(), obj.m(), self.attr.m().
        recv = func.value
        recv_name = dotted_name(recv)
        if recv_name is not None:
            cls_qual = self.var_types.get(recv_name)
            if cls_qual is None and "." in recv_name:
                head, _, attr_chain = recv_name.partition(".")
                base_cls = self.var_types.get(head)
                if base_cls is not None and "." not in attr_chain:
                    cls_info = self.project.classes.get(base_cls)
                    if cls_info is not None:
                        cls_qual = cls_info.attr_types.get(attr_chain)
            if cls_qual is not None:
                method = self._class_method(cls_qual, func.attr)
                if method is not None:
                    return {method}
                return set()  # known type, unknown method: likely stdlib
        # Name fallback (CHA): every project method with this name, if
        # the name is distinctive enough to keep the graph useful.
        if func.attr in _FALLBACK_BLOCKLIST or func.attr.startswith("__"):
            return set()
        candidates = self.project._method_index.get(func.attr, [])
        if 0 < len(candidates) <= MAX_NAME_FALLBACK:
            return set(candidates)
        return set()

    def _class_method(self, cls_qual: str, method: str) -> Optional[str]:
        cls = self.project.classes.get(cls_qual)
        if cls is None:
            return None
        return cls.methods.get(method)


# -- helpers ---------------------------------------------------------------
def _walk_own_scope(node: ast.AST) -> Iterable[ast.AST]:
    """Walk without descending into nested function/class scopes.

    The root node itself is yielded even when it is a def (so a visitor
    starting *at* a function sees its body, but not its nested defs').
    """
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            yield child  # visible as a statement/expr, not descended into
            continue
        yield from _walk_own_scope(child)


def _stmt_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:
        blocks.append(case.body)
    return blocks


def _project_module(target: str) -> str:
    """The project module an import target belongs to ('' if external)."""
    if target == "repro" or target.startswith("repro."):
        return target
    return ""


def _signature(node: ast.AST) -> str:
    """A stable, human-diffable signature string for a def."""
    args = node.args
    parts: List[str] = []
    pos = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    n_required = len(pos) - len(defaults)
    for i, arg in enumerate(pos):
        if i < n_required:
            parts.append(arg.arg)
        else:
            parts.append(f"{arg.arg}={_unparse(defaults[i - n_required])}")
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is None:
            parts.append(arg.arg)
        else:
            parts.append(f"{arg.arg}={_unparse(default)}")
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    prefix = "async def" if isinstance(node, ast.AsyncFunctionDef) else "def"
    return f"{prefix}({', '.join(parts)})"


def _unparse(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed default
        return "?"


def _load_api_snapshot(path: Path) -> Optional[Dict[str, object]]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"warning: unreadable api surface snapshot {path}: {exc}",
            file=sys.stderr,
        )
        return None
    if not isinstance(data, dict) or data.get("schema") != API_SURFACE_SCHEMA:
        print(
            f"warning: foreign api surface schema in {path} "
            f"(expected {API_SURFACE_SCHEMA}); ignoring snapshot",
            file=sys.stderr,
        )
        return None
    return data


def write_api_surface(project: ProjectContext, path: Path) -> None:
    """Atomically write the project's current public API surface."""
    payload = json.dumps(project.api_surface(), indent=2, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(path)
