"""Per-file lint context: source, AST, module name, suppressions, imports.

One :class:`FileContext` is built per linted file and handed to every
rule.  Expensive derived structures (the parsed tree, the alias map of
imports, the ``# repro: noqa`` line map) are computed once here rather
than per rule.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Optional, Set

#: ``# repro: noqa`` (all rules) or ``# repro: noqa-DET001`` /
#: ``# repro: noqa-DET001,ARCH001`` (specific codes) on the flagged line.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)

#: Directory names skipped when expanding directory arguments.  Fixture
#: snippets *intentionally* violate the rules, so they are only linted
#: when named explicitly on the command line.
DEFAULT_EXCLUDED_PARTS = frozenset(
    {"fixtures", "__pycache__", ".git", ".venv", "build", "dist", ".eggs"}
)

#: Sentinel stored in the noqa map for a bare ``# repro: noqa``.
ALL_CODES = "*"


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the package root.

    The last path component named ``repro`` (or, failing that, ``tests`` /
    ``benchmarks`` / ``examples``) anchors the name, so both
    ``src/repro/core/routing.py`` and a scratch copy at
    ``/tmp/xyz/repro/core/routing.py`` resolve to ``repro.core.routing``.
    Files outside any known root lint under their bare stem.
    """
    parts = list(path.parts)
    stem = path.stem
    if parts:
        parts[-1] = stem
    if stem == "__init__" and len(parts) > 1:
        parts.pop()
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == anchor:
                return ".".join(parts[i:])
    return stem


def parse_noqa(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of suppressed codes.

    A bare ``# repro: noqa`` suppresses every rule on that line and is
    recorded as the :data:`ALL_CODES` sentinel.  The scan is a per-line
    regex, so a marker inside a string literal is honoured too — an
    accepted imprecision for a comment convention this explicit.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes:
            out[lineno] = {c.strip() for c in codes.split(",")}
        else:
            out[lineno] = {ALL_CODES}
    return out


class FileContext:
    """Everything a rule may consult about one file.

    Attributes are plain data; ``tree`` is parsed eagerly so a syntax
    error surfaces as one E999-style finding before any rule runs (see
    the pipeline).
    """

    def __init__(self, path: Path, source: str, display_path: Optional[str] = None):
        self.path = path
        #: Path as shown in findings (repo-relative when possible).
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.module = module_name_for(path)
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.noqa = parse_noqa(source)
        #: Whole-program view, set by the pipeline's project phase (None
        #: when linting a single file outside ``lint_paths``).  Typed
        #: loosely to keep this module import-light; it is a
        #: ``repro.analysis.project.ProjectContext`` when present.
        self.project: Optional[object] = None
        self._imports: Optional[Dict[str, str]] = None

    @property
    def imports(self) -> Dict[str, str]:
        """Local alias -> fully qualified imported name.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        perf_counter as pc`` maps ``pc -> time.perf_counter``; ``import
        repro.obs.events`` maps ``repro -> repro`` (attribute chains are
        resolved against this by the AST helpers).
        """
        if self._imports is None:
            aliases: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        target = alias.name if alias.asname else alias.name.split(".")[0]
                        aliases[local] = target
                elif isinstance(node, ast.ImportFrom):
                    if node.level:  # relative import: resolve inside repro only
                        base = self._resolve_relative(node)
                    else:
                        base = node.module or ""
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        aliases[local] = f"{base}.{alias.name}" if base else alias.name
            self._imports = aliases
        return self._imports

    def _resolve_relative(self, node: ast.ImportFrom) -> str:
        parts = self.module.split(".")
        # A module's package is its parents; ``from . import x`` in
        # pkg/mod.py resolves against pkg.
        pkg = parts[: len(parts) - 1] if parts else []
        up = node.level - 1
        if up:
            pkg = pkg[: len(pkg) - up]
        base = ".".join(pkg)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.noqa.get(line)
        if not codes:
            return False
        return ALL_CODES in codes or code in codes
