"""Finding reporters: human text and machine JSON.

Both reporters consume the same :class:`LintReport` produced by the
pipeline, so the exit-code logic and the rendering cannot disagree about
what counts as a failure.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding


@dataclass
class LintReport:
    """Everything one lint run produced, pre-partitioned."""

    #: Findings not covered by the baseline — these fail the gate.
    new: List[Finding] = field(default_factory=list)
    #: Findings matched (and absorbed) by the baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro: noqa`` marker.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings from non-gating rules (ARCH002 drift): reported for
    #: review, never counted into the exit code, never baselined.
    advisory: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (candidates for removal).
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Files that failed to parse, as (path, message) pairs; always fatal.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if (self.new or self.errors) else 0

    def per_code(self) -> Dict[str, int]:
        return dict(sorted(Counter(f.code for f in self.new).items()))


def render_text(report: LintReport, statistics: bool = False) -> str:
    """The default human report: one line per gating finding + summary."""
    lines: List[str] = []
    for path, message in report.errors:
        lines.append(f"{path}: E999 {message}")
    for f in sorted(report.new):
        lines.append(f.render())
    if report.advisory:
        lines.append("")
        lines.append("advisory (non-gating):")
        for f in sorted(report.advisory):
            lines.append(f"  {f.render()}")
    if statistics and report.new:
        lines.append("")
        lines.append("per-rule counts:")
        for code, n in report.per_code().items():
            lines.append(f"  {code:8s} {n}")
    if report.stale_baseline:
        lines.append("")
        lines.append(
            f"note: {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} no longer "
            "match anything — run `repro lint --update-baseline` to drop:"
        )
        for path, code, message in report.stale_baseline:
            lines.append(f"  {path}: {code} {message}")
    lines.append("")
    lines.append(summary_line(report))
    return "\n".join(lines).lstrip("\n")


def summary_line(report: LintReport) -> str:
    verdict = "FAILED" if report.exit_code else "ok"
    bits = [
        f"{report.files_checked} files checked",
        f"{len(report.new)} finding{'s' if len(report.new) != 1 else ''}",
    ]
    if report.baselined:
        bits.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        bits.append(f"{len(report.suppressed)} suppressed")
    if report.advisory:
        bits.append(f"{len(report.advisory)} advisory")
    if report.errors:
        bits.append(f"{len(report.errors)} parse errors")
    return f"repro-lint: {', '.join(bits)} — {verdict}"


def render_json(report: LintReport) -> str:
    """Stable machine-readable report (consumed by CI annotations/tests)."""
    payload = {
        "version": 1,
        "summary": {
            "files_checked": report.files_checked,
            "findings": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "advisory": len(report.advisory),
            "parse_errors": len(report.errors),
            "per_code": report.per_code(),
            "exit_code": report.exit_code,
        },
        "findings": [f.to_dict() for f in sorted(report.new)],
        "baselined": [f.to_dict() for f in sorted(report.baselined)],
        "suppressed": [f.to_dict() for f in sorted(report.suppressed)],
        "advisory": [f.to_dict() for f in sorted(report.advisory)],
        "stale_baseline": [
            {"path": p, "code": c, "message": m} for p, c, m in report.stale_baseline
        ],
        "errors": [{"path": p, "message": m} for p, m in report.errors],
    }
    return json.dumps(payload, indent=2)


def render(report: LintReport, fmt: str, statistics: bool = False) -> str:
    if fmt == "json":
        return render_json(report)
    if fmt == "text":
        return render_text(report, statistics=statistics)
    raise ValueError(f"unknown format {fmt!r}")
