"""Baseline file: grandfathered findings that do not fail the gate.

The baseline lets the linter land as a hard CI gate on day one: known
pre-existing findings are recorded once (``repro lint --update-baseline``)
and matched as a *multiset* keyed on (path, code, message) — line numbers
are excluded so unrelated edits that shift code do not invalidate
entries, while a genuinely new instance of an already-baselined message
still fails (the multiset count is exceeded).

Stale entries (baselined findings that no longer occur) are reported so
the file shrinks monotonically toward empty — the shipped baseline for
this repo *is* empty, and the goal is to keep it that way.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: Sequence[Dict[str, object]] = ()):
        self.entries = list(entries)
        self._counts: Counter = Counter(
            (str(e["path"]), str(e["code"]), str(e["message"])) for e in self.entries
        )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})"
            )
        return cls(data.get("findings", []))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls([f.to_dict() for f in sorted(findings)])

    def write(self, path: Path) -> None:
        """Atomic write (tmp + rename), like the fleet store's index: a
        crash mid-``--update-baseline``/``--prune-baseline`` leaves the
        previous baseline intact, never a truncated one."""
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered repro-lint findings.  Every entry needs a "
                "justification comment at the flagged site; regenerate with "
                "`repro lint --update-baseline` and keep this file shrinking."
            ),
            "findings": self.entries,
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        tmp.replace(path)

    def without(self, stale: Sequence[Fingerprint]) -> "Baseline":
        """A new baseline minus ``stale`` fingerprints (multiset-aware).

        Each stale fingerprint removes one matching entry, mirroring how
        :meth:`partition` consumes budget, so a fingerprint baselined N
        times and now occurring N-k times keeps exactly N-k entries.
        """
        to_drop = Counter(stale)
        kept: List[Dict[str, object]] = []
        for entry in self.entries:
            fp = (str(entry["path"]), str(entry["code"]), str(entry["message"]))
            if to_drop.get(fp, 0) > 0:
                to_drop[fp] -= 1
                continue
            kept.append(entry)
        return Baseline(kept)

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Fingerprint]]:
        """Split findings into (new, baselined) and list stale entries.

        Matching consumes baseline budget per fingerprint, so N baselined
        occurrences admit at most N live occurrences.
        """
        budget = Counter(self._counts)
        new: List[Finding] = []
        matched: List[Finding] = []
        for f in sorted(findings):
            if budget.get(f.fingerprint, 0) > 0:
                budget[f.fingerprint] -= 1
                matched.append(f)
            else:
                new.append(f)
        stale = sorted(fp for fp, n in budget.items() if n > 0 for _ in range(n))
        return new, matched, stale

    def __len__(self) -> int:
        return len(self.entries)
