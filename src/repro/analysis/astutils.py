"""Shared AST helpers for the rule implementations.

The determinism rules all need the same vocabulary: "is this call an RNG
draw", "is this expression an unordered collection", "what dotted name
does this attribute chain spell".  Centralising the heuristics keeps the
rules short and keeps their false-positive surface documented in one
place.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

#: Methods of ``numpy.random.Generator`` / ``random.Random`` that consume
#: randomness.  A call ``X.m(...)`` with ``m`` in this set and an
#: RNG-looking receiver (see :func:`is_rng_receiver`) counts as a draw.
DRAW_METHODS = frozenset(
    {
        "random",
        "choice",
        "shuffle",
        "integers",
        "randint",
        "normal",
        "standard_normal",
        "uniform",
        "sample",
        "permutation",
        "permuted",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "triangular",
        "beta",
        "gamma",
        "lognormal",
        "pareto",
        "zipf",
        "bytes",
    }
)

#: Receiver identifiers accepted as "an RNG object".  Matching is on the
#: *last* name component of the receiver chain (``self.rng`` -> ``rng``,
#: ``streams["churn"]`` -> ``streams``), so helper wrappers that pass an
#: RNG positionally are out of scope by design.
_RNG_NAME_RE = re.compile(r"(^|_)(rng|rngs|gen|generator|stream|streams|random_state)$")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_base_name(node: ast.AST) -> Optional[str]:
    """Last meaningful identifier of a receiver expression.

    ``self.rng`` -> ``rng``; ``streams["churn"]`` -> ``streams``;
    ``ctx.rng`` -> ``rng``; calls and literals -> None.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_rng_receiver(node: ast.AST) -> bool:
    name = receiver_base_name(node)
    return bool(name and _RNG_NAME_RE.search(name.lower()))


def is_rng_draw(node: ast.AST) -> bool:
    """True when ``node`` is a call that consumes an RNG substream."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in DRAW_METHODS
        and is_rng_receiver(node.func.value)
    )


def contains_rng_draw(node: ast.AST) -> Optional[ast.Call]:
    """First RNG draw anywhere under ``node`` (inclusive), else None."""
    for sub in ast.walk(node):
        if is_rng_draw(sub):
            return sub
    return None


def is_unordered_expr(node: ast.AST, set_vars: Optional[Dict[str, int]] = None) -> bool:
    """Does ``node`` evaluate to an unordered collection?

    Matches set literals, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, ``d.values()`` / ``d.keys()`` calls (named
    by the DET003 spec: ``dict`` iteration order is insertion order, and
    insertion order is exactly what the convention refuses to rely on for
    RNG consumption), set operators (``a | b`` on known sets), and names
    recorded in ``set_vars`` (locals assigned a set-typed expression).
    A wrapping ``sorted(...)`` is handled by the caller, which simply
    does not recurse through it.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "keys")
            and not node.args
        ):
            return True
        # set methods returning sets: a.union(b), a.difference(b), ...
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr
            in ("union", "difference", "intersection", "symmetric_difference")
            and set_vars is not None
            and _name_in(node.func.value, set_vars)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_unordered_expr(node.left, set_vars) or is_unordered_expr(
            node.right, set_vars
        )
    if set_vars is not None and _name_in(node, set_vars):
        return True
    return False


def _name_in(node: ast.AST, names: Dict[str, int]) -> bool:
    return isinstance(node, ast.Name) and node.id in names


_ORDERING_FUNCS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})


def find_unordered_source(
    node: ast.AST, set_vars: Optional[Dict[str, int]] = None
) -> Optional[ast.AST]:
    """First unordered sub-expression that actually leaks its order.

    Recurses through order-preserving wrappers (``list()``, ``tuple()``,
    starred args, comprehension iterables) but *not* through
    order-erasing ones: ``sorted(...)`` restores determinism, and
    aggregations (``min``/``max``/``sum``/``len``/``any``/``all``) are
    order-insensitive.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _ORDERING_FUNCS:
            return None
        if node.func.id in ("list", "tuple") and node.args:
            return find_unordered_source(node.args[0], set_vars)
    if is_unordered_expr(node, set_vars):
        return node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        found = find_unordered_source(child, set_vars)
        if found is not None:
            return found
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Every function/method in the module as ``(qualname, node)``."""

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    return walk(tree, "")


def collect_set_vars(func: ast.AST) -> Dict[str, int]:
    """Local names assigned an unordered expression inside ``func``.

    A one-pass, flow-insensitive approximation: ``cands = set(peers)``
    records ``cands``; later reassignment to an ordered value is not
    tracked (rare in this codebase, and a false positive there is
    silenced with a targeted noqa).
    """
    out: Dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and is_unordered_expr(node.value, out):
                out[target.id] = node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and is_unordered_expr(node.value, out):
                out[node.target.id] = node.lineno
    return out


def resolve_call_target(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted target of a call, resolved through imports.

    ``pc()`` after ``from time import perf_counter as pc`` resolves to
    ``time.perf_counter``; ``np.random.seed`` resolves to
    ``numpy.random.seed``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    root = imports.get(head)
    if root is None:
        return name
    return f"{root}.{rest}" if rest else root
