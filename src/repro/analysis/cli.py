"""``repro lint`` — the determinism & layering linter CLI.

Reachable three ways, all sharing this module:

- ``repro lint ...`` / ``python -m repro lint ...`` (the main CLI
  delegates here lazily);
- ``python -m repro.analysis ...`` (stdlib-only entry, no numpy import);
- :func:`run` programmatically from tests.

Exit codes: 0 clean (or fully baselined), 1 findings or parse errors,
2 usage errors (unknown rule code, missing baseline file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.cache import DEFAULT_CACHE_NAME, LintCache
from repro.analysis.pipeline import default_jobs, lint_paths
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render

DEFAULT_BASELINE_NAME = "lint-baseline.json"
DEFAULT_API_SURFACE_NAME = "api-surface.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` arguments to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather the current findings",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline minus entries that no longer match "
        "anything (atomic write), then report as usual",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallelise the per-file phase over N processes "
        "(default: $REPRO_JOBS, else serial); output is byte-identical "
        "to a serial run",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help=f"per-file result cache (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache for this run",
    )
    parser.add_argument(
        "--api-surface",
        default=None,
        metavar="PATH",
        help="regenerate the public API surface snapshot (ARCH002) at "
        "PATH after linting",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its rationale and exit",
    )


def _print(text: str, stream: Optional[object] = None) -> None:
    # Tolerate a closed pipe (`repro lint --list-rules | head`): report
    # output is best-effort once the reader has gone away.
    try:
        print(text, file=stream)
    except BrokenPipeError:
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        _print(_render_rules())
        return 0

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None

    baseline: Optional[Baseline] = None
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            if not baseline_path.exists() and not args.update_baseline:
                print(f"error: baseline file not found: {baseline_path}",
                      file=sys.stderr)
                return 2
        else:
            default = Path(DEFAULT_BASELINE_NAME)
            baseline_path = default if (default.exists() or args.update_baseline) \
                else None
        if baseline_path is not None and baseline_path.exists():
            baseline = Baseline.load(baseline_path)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such file or directory: "
            f"{', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    jobs = args.jobs if args.jobs is not None else default_jobs()
    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache) if args.cache else Path(DEFAULT_CACHE_NAME))

    api_surface_out = Path(args.api_surface) if args.api_surface else None

    try:
        report = lint_paths(
            paths,
            select=select,
            ignore=ignore,
            baseline=None if args.update_baseline else baseline,
            jobs=max(1, jobs),
            cache=cache,
            api_surface_out=api_surface_out,
        )
    except ValueError as exc:  # unknown rule code from --select/--ignore
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if api_surface_out is not None:
        print(f"api surface written: {api_surface_out}", file=sys.stderr)

    if args.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        Baseline.from_findings(report.new).write(target)
        print(
            f"baseline updated: {len(report.new)} finding"
            f"{'s' if len(report.new) != 1 else ''} grandfathered in {target}"
        )
        return 0

    if args.prune_baseline:
        if baseline is None or baseline_path is None:
            print(
                "error: --prune-baseline needs an existing baseline file",
                file=sys.stderr,
            )
            return 2
        pruned = baseline.without(report.stale_baseline)
        pruned.write(baseline_path)
        print(
            f"baseline pruned: {len(report.stale_baseline)} stale entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} removed, "
            f"{len(pruned)} kept in {baseline_path}"
        )
        report.stale_baseline = []

    _print(render(report, args.format, statistics=args.statistics))
    return report.exit_code


def _render_rules() -> str:
    lines: List[str] = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"    {rule.rationale}")
        lines.append("")
    lines.append(
        "suppress inline with `# repro: noqa-<CODE>` (or bare "
        "`# repro: noqa`); grandfather with `repro lint --update-baseline`."
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & layering linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))
