"""The lint pipeline: discover files, parse once, run every rule.

``lint_paths`` is the single entry point used by the CLI, the test
suite, and CI.  Directory arguments expand to ``**/*.py`` minus the
default exclusions (fixture snippets intentionally violate rules);
explicit file arguments are always linted, which is how the fixture
tests exercise the rules on purpose-built bad files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.context import DEFAULT_EXCLUDED_PARTS, FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, select_rules
from repro.analysis.reporters import LintReport


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths``, stable-sorted, exclusions applied.

    Explicitly named files bypass the exclusion list; directories are
    walked recursively.
    """
    out: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
            explicit = True
        else:
            candidates = sorted(path.rglob("*.py"))
            explicit = False
        for cand in candidates:
            if not explicit and any(
                part in DEFAULT_EXCLUDED_PARTS for part in cand.parts
            ):
                continue
            key = cand.resolve()
            if key in seen:
                continue
            seen.add(key)
            out.append(cand)
    return out


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> "FileResult":
    """Parse one file and run every rule over it."""
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        ctx = FileContext(path, source, display_path=display)
    except (SyntaxError, UnicodeDecodeError) as exc:
        return FileResult(display, error=f"{type(exc).__name__}: {exc}")
    raw: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.code, finding.line):
                suppressed.append(finding)
            else:
                raw.append(finding)
    return FileResult(display, findings=raw, suppressed=suppressed)


class FileResult:
    """Findings (kept + suppressed) or the parse error for one file."""

    def __init__(
        self,
        display_path: str,
        findings: Optional[List[Finding]] = None,
        suppressed: Optional[List[Finding]] = None,
        error: Optional[str] = None,
    ):
        self.display_path = display_path
        self.findings = findings or []
        self.suppressed = suppressed or []
        self.error = error


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint ``paths`` and partition results against ``baseline``."""
    rules = select_rules(select, ignore)
    report = LintReport()
    all_findings: List[Finding] = []
    for path in discover_files(paths):
        result = lint_file(path, rules, root=root)
        report.files_checked += 1
        if result.error is not None:
            report.errors.append((result.display_path, result.error))
            continue
        all_findings.extend(result.findings)
        report.suppressed.extend(result.suppressed)
    if baseline is not None:
        report.new, report.baselined, report.stale_baseline = baseline.partition(
            all_findings
        )
    else:
        report.new = sorted(all_findings)
    return report


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Repo-relative posix path when possible (stable across machines)."""
    resolved = path.resolve()
    for base in ([root.resolve()] if root is not None else []) + [Path.cwd()]:
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return path.as_posix()
