"""The lint pipeline: discover files, parse once, run every rule.

``lint_paths`` is the single entry point used by the CLI, the test
suite, and CI.  Directory arguments expand to ``**/*.py`` minus the
default exclusions (fixture snippets intentionally violate rules);
explicit file arguments are always linted, which is how the fixture
tests exercise the rules on purpose-built bad files.

Since the whole-program upgrade the run has two phases:

- **phase A (per-file)**: every rule with ``requires_project = False``
  runs over one file at a time.  This phase is embarrassingly parallel
  (``jobs > 1`` fans it over a ``ProcessPoolExecutor``) and cacheable by
  content hash (:mod:`repro.analysis.cache`).  Results are keyed back to
  their discovery index, so serial and parallel runs produce
  byte-identical reports;
- **phase B (project)**: the parent process parses every file (it needs
  the ASTs regardless of what phase A cached), builds one
  :class:`repro.analysis.project.ProjectContext`, attaches it as
  ``ctx.project``, and runs the ``requires_project`` rules serially in
  display-path order.  Findings from non-gating rules (ARCH002) land in
  ``report.advisory`` and never affect the exit code.
"""

from __future__ import annotations

import concurrent.futures
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.cache import LintCache, content_digest
from repro.analysis.context import DEFAULT_EXCLUDED_PARTS, FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, select_rules
from repro.analysis.reporters import LintReport


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths``, stable-sorted, exclusions applied.

    Explicitly named files bypass the exclusion list; directories are
    walked recursively.
    """
    out: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
            explicit = True
        else:
            candidates = sorted(path.rglob("*.py"))
            explicit = False
        for cand in candidates:
            if not explicit and any(
                part in DEFAULT_EXCLUDED_PARTS for part in cand.parts
            ):
                continue
            key = cand.resolve()
            if key in seen:
                continue
            seen.add(key)
            out.append(cand)
    return out


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (serial when unset/invalid).

    Reimplemented here rather than imported from the experiment harness:
    ``repro.analysis`` is stdlib-only and sits below everything (ARCH001).
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    try:
        value = int(raw)
    except ValueError:
        return 1
    return value if value > 0 else 1


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> "FileResult":
    """Parse one file and run every rule over it.

    Single-file entry point (fixture tests, editor integration): project
    rules see ``ctx.project is None`` and degrade to their documented
    lexical behaviour.
    """
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        ctx = FileContext(path, source, display_path=display)
    except (SyntaxError, UnicodeDecodeError) as exc:
        return FileResult(display, error=f"{type(exc).__name__}: {exc}")
    result = FileResult(display)
    _run_rules_on(ctx, rules, result)
    return result


def _run_rules_on(
    ctx: FileContext, rules: Sequence[Rule], result: "FileResult"
) -> None:
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.code, finding.line):
                result.suppressed.append(finding)
            elif rule.gating:
                result.findings.append(finding)
            else:
                result.advisory.append(finding)


class FileResult:
    """Findings (kept + suppressed + advisory) or the parse error."""

    def __init__(
        self,
        display_path: str,
        findings: Optional[List[Finding]] = None,
        suppressed: Optional[List[Finding]] = None,
        error: Optional[str] = None,
        advisory: Optional[List[Finding]] = None,
    ):
        self.display_path = display_path
        self.findings = findings or []
        self.suppressed = suppressed or []
        self.advisory = advisory or []
        self.error = error


def _lint_file_worker(
    payload: Tuple[int, str, str, Tuple[str, ...]],
) -> Tuple[int, Optional[str], Dict[str, object]]:
    """Pool worker: run the per-file rules for one file.

    Receives and returns only plain data (paths, rule codes, finding
    dicts) so the task pickles under any start method.  Rules are
    re-instantiated from their codes inside the worker via the registry.
    """
    index, path_str, display, codes = payload
    from repro.analysis.registry import get_rule

    rules = [get_rule(code) for code in codes]
    path = Path(path_str)
    try:
        data = path.read_bytes()
        source = data.decode("utf-8")
        ctx = FileContext(path, source, display_path=display)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        return (
            index,
            None,
            {"findings": [], "suppressed": [], "error": f"{type(exc).__name__}: {exc}"},
        )
    result = FileResult(display)
    _run_rules_on(ctx, rules, result)
    return (
        index,
        content_digest(data),
        {
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": [f.to_dict() for f in result.suppressed],
            "error": None,
        },
    )


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
    jobs: int = 1,
    cache: Optional[LintCache] = None,
    api_surface_path: Optional[Path] = None,
    api_surface_out: Optional[Path] = None,
) -> LintReport:
    """Lint ``paths`` and partition results against ``baseline``.

    ``jobs > 1`` parallelises the per-file phase; ``cache`` short-circuits
    unchanged files.  Serial, parallel, cached and cold runs all produce
    byte-identical reports.  ``api_surface_path`` locates the committed
    ARCH002 snapshot (default: ``api-surface.json`` under ``root``/cwd);
    ``api_surface_out`` additionally writes the freshly computed surface
    there after the project phase.
    """
    rules = select_rules(select, ignore)
    per_file_rules = [r for r in rules if not r.requires_project]
    project_rules = [r for r in rules if r.requires_project]
    per_file_codes = tuple(r.code for r in per_file_rules)

    files = discover_files(paths)
    report = LintReport()
    report.files_checked = len(files)

    # Parse everything in the parent: the project phase needs every AST
    # no matter what phase A cached or farmed out.
    contexts: List[Optional[FileContext]] = []
    parse_errors: List[Optional[str]] = []
    digests: List[Optional[str]] = []
    displays: List[str] = []
    for path in files:
        display = _display_path(path, root)
        displays.append(display)
        try:
            data = path.read_bytes()
            source = data.decode("utf-8")
            ctx = FileContext(path, source, display_path=display)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            contexts.append(None)
            digests.append(None)
            parse_errors.append(f"{type(exc).__name__}: {exc}")
            continue
        contexts.append(ctx)
        digests.append(content_digest(data))
        parse_errors.append(None)

    # Phase A: per-file rules (cacheable, parallelisable).
    results: List[Optional[Dict[str, object]]] = [None] * len(files)
    pending: List[int] = []
    for i in range(len(files)):
        if parse_errors[i] is not None:
            results[i] = {
                "findings": [],
                "suppressed": [],
                "error": parse_errors[i],
            }
            continue
        if cache is not None and digests[i] is not None:
            hit = cache.get(displays[i], digests[i], list(per_file_codes))
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        if jobs > 1:
            _run_phase_a_parallel(
                files, displays, per_file_codes, pending, results, jobs
            )
        else:
            for i in pending:
                result = FileResult(displays[i])
                _run_rules_on(contexts[i], per_file_rules, result)
                results[i] = {
                    "findings": [f.to_dict() for f in result.findings],
                    "suppressed": [f.to_dict() for f in result.suppressed],
                    "error": None,
                }
        if cache is not None:
            for i in pending:
                if digests[i] is not None and results[i] is not None:
                    entry = results[i]
                    cache.put(
                        displays[i],
                        digests[i],
                        list(per_file_codes),
                        list(entry["findings"]),  # type: ignore[arg-type]
                        list(entry["suppressed"]),  # type: ignore[arg-type]
                        entry["error"],  # type: ignore[arg-type]
                    )

    all_findings: List[Finding] = []
    advisory: List[Finding] = []
    for i in range(len(files)):
        entry = results[i]
        if entry is None:  # a worker died; treat as an analysis error
            report.errors.append((displays[i], "per-file analysis failed"))
            continue
        if entry.get("error"):
            report.errors.append((displays[i], str(entry["error"])))
            continue
        all_findings.extend(Finding.from_dict(d) for d in entry["findings"])
        report.suppressed.extend(Finding.from_dict(d) for d in entry["suppressed"])

    # Phase B: whole-program rules, serial, in the parent.
    parsed = [ctx for ctx in contexts if ctx is not None]
    if project_rules and parsed:
        from repro.analysis.project import ProjectContext, write_api_surface

        if api_surface_path is None:
            api_surface_path = (root or Path.cwd()) / "api-surface.json"
        project = ProjectContext(parsed, api_surface_path=api_surface_path)
        for ctx in parsed:
            ctx.project = project
        for ctx in sorted(parsed, key=lambda c: c.display_path):
            result = FileResult(ctx.display_path)
            _run_rules_on(ctx, project_rules, result)
            all_findings.extend(result.findings)
            advisory.extend(result.advisory)
            report.suppressed.extend(result.suppressed)
        if api_surface_out is not None:
            write_api_surface(project, api_surface_out)

    report.advisory = sorted(advisory)
    if baseline is not None:
        report.new, report.baselined, report.stale_baseline = baseline.partition(
            all_findings
        )
    else:
        report.new = sorted(all_findings)
    if cache is not None:
        cache.write()
    return report


def _run_phase_a_parallel(
    files: Sequence[Path],
    displays: Sequence[str],
    codes: Tuple[str, ...],
    pending: Sequence[int],
    results: List[Optional[Dict[str, object]]],
    jobs: int,
) -> None:
    """Fan the pending per-file work over a process pool.

    Results slot back into ``results`` by discovery index, so downstream
    ordering (and therefore report bytes) cannot depend on completion
    order.  A crashed worker leaves its slot as None, reported as an
    analysis error rather than silently dropped.
    """
    payloads = [(i, str(files[i]), displays[i], codes) for i in pending]
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_lint_file_worker, payload) for payload in payloads]
        for future in concurrent.futures.as_completed(futures):
            try:
                index, _digest, entry = future.result()
            except Exception:  # noqa: BLE001 - worker crash -> error slot
                continue
            results[index] = entry


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Repo-relative posix path when possible (stable across machines)."""
    resolved = path.resolve()
    for base in ([root.resolve()] if root is not None else []) + [Path.cwd()]:
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return path.as_posix()
