"""Rule base class and registry.

Rules self-register at import time via the :func:`register` decorator;
``repro.analysis.rules`` imports every rule module so building the
default rule set is just :func:`all_rules`.  The registry is keyed by
code (``DET001``) and rejects duplicates, so a typo'd copy-paste fails
fast instead of shadowing an existing rule.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterable, Iterator, List, Optional

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding


class Rule(abc.ABC):
    """One lint rule: a code, a human rationale, and a per-file check.

    ``check`` yields findings for a single :class:`FileContext`; the
    pipeline handles suppression, baselines, and reporting.  Rules are
    stateless — one shared instance serves every file.
    """

    #: Stable identifier, e.g. ``DET001`` (used in noqa and baselines).
    code: str = ""
    #: Short name, e.g. ``unseeded-random``.
    name: str = ""
    #: One-paragraph determinism/architecture rationale (shown by
    #: ``repro lint --list-rules`` and quoted in docs).
    rationale: str = ""
    #: Project-aware rules consult ``ctx.project`` (the whole-program
    #: graph) and run in the serial phase B of the pipeline; per-file
    #: rules run (and cache, and parallelise) in phase A.  A
    #: project-aware rule must degrade gracefully when ``ctx.project``
    #: is ``None`` (fixture tests lint single files).
    requires_project: bool = False
    #: Non-gating rules produce *advisory* findings: reported, never
    #: counted into the exit code, never baselined.  Used for drift
    #: surfacing (ARCH002) where a finding is a review prompt, not a
    #: defect.
    gating: bool = True

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    rule = cls()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define code and name")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code (stable report order)."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[code]


def rule_codes() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The rule set after ``--select`` / ``--ignore`` filtering.

    Unknown codes raise ``ValueError`` — a misspelt selection silently
    linting nothing is worse than an error.
    """
    _ensure_loaded()
    known = set(_REGISTRY)
    chosen = set(select) if select else set(known)
    unknown = chosen - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    if ignore:
        bad = set(ignore) - known
        if bad:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(bad))}")
        chosen -= set(ignore)
    return [_REGISTRY[code] for code in sorted(chosen)]


def _ensure_loaded() -> None:
    # Deferred so registry.py itself stays import-cycle free; the rules
    # package imports this module for the decorator.
    import repro.analysis.rules  # noqa: F401  (registration side effect)
