"""Rule modules; importing this package registers every rule.

Adding a rule: create (or extend) a module here, subclass
:class:`repro.analysis.registry.Rule`, decorate with ``@register``, and
import the module below.  Codes are grouped by family: ``DETxxx``
determinism, ``ARCHxxx`` layering, ``CONCxxx`` concurrency/fork-safety,
``PERFxxx`` performance conventions.
"""

from repro.analysis.rules import concurrency, determinism, layering, perf

__all__ = ["concurrency", "determinism", "layering", "perf"]
