"""ARCH001: import-layering violations.

The dependency layering this repo maintains::

    repro.sim.rng          <- leaf: stdlib + numpy only
    repro.{core,gametheory,network,payment,sim}   <- simulation layers
    repro.obs              <- observational side-layer (wired lazily from
                              core; eager from network/payment/sim where
                              the bus is a constructor dependency)
    repro.experiments      <- harness: may import everything below
    repro.fleet            <- orchestrator: may import the harness and obs;
                              nothing below may import it back
    repro.analysis         <- dev tooling: stdlib only, imports nothing above

Three properties are enforced mechanically:

- ``repro.core`` / ``repro.gametheory`` never import ``repro.experiments``
  or ``repro.obs`` at module scope (lazy function-level or
  ``TYPE_CHECKING`` imports are fine) — the paper-facing model layers
  must be loadable, and testable, without dragging in the harness or the
  obs machinery;
- ``repro.sim.rng`` imports nothing stateful — it is the determinism
  root, and a stray dependency there can consume entropy or observe
  import order before any seed is set;
- nothing below the harness imports ``repro.experiments`` at module
  scope, and nothing outside ``repro.fleet`` itself imports
  ``repro.fleet`` at module scope — the sweep orchestrator sits at the
  very top of the stack (it may depend on the harness and obs, never
  the reverse; the ``repro fleet`` CLI wiring defers its import into
  the handler).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Import roots ``repro.sim.rng`` may use: pure, stateless machinery.
_RNG_ALLOWED_ROOTS = frozenset(
    {"__future__", "typing", "numpy", "math", "abc", "dataclasses", "collections"}
)

#: Layers that must not import the experiment harness at module scope.
_NO_EXPERIMENTS_PREFIXES = (
    "repro.core",
    "repro.gametheory",
    "repro.network",
    "repro.payment",
    "repro.sim",
    "repro.obs",
    "repro.adversary",
    "repro.analysis",
)

#: Layers that must not import the obs side-layer at module scope.
_NO_OBS_PREFIXES = ("repro.core", "repro.gametheory", "repro.analysis")

#: Everything below the sweep orchestrator: may never import repro.fleet
#: at module scope (the experiments CLI defers it into the handler).
_NO_FLEET_PREFIXES = (
    "repro.core",
    "repro.gametheory",
    "repro.network",
    "repro.payment",
    "repro.sim",
    "repro.obs",
    "repro.adversary",
    "repro.analysis",
    "repro.experiments",
)


def _under(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@register
class ImportLayeringRule(Rule):
    """ARCH001: module-scope import that crosses the layering."""

    code = "ARCH001"
    name = "import-layering"
    rationale = (
        "Layering keeps the paper-facing model (core/gametheory) loadable "
        "without the harness or obs machinery, and keeps repro.sim.rng — "
        "the determinism root — free of anything stateful.  Violations "
        "are fixed by deferring the import into the function that needs "
        "it or behind typing.TYPE_CHECKING."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module = ctx.module
        if not (module == "repro" or module.startswith("repro.")):
            return
        for node, imported in _module_scope_imports(ctx):
            yield from self._check_one(ctx, node, imported)

    def _check_one(
        self, ctx: FileContext, node: ast.stmt, imported: str
    ) -> Iterator[Finding]:
        module = ctx.module
        if module == "repro.sim.rng":
            root = imported.split(".")[0]
            if root not in _RNG_ALLOWED_ROOTS:
                yield self.finding(
                    ctx,
                    node,
                    f"repro.sim.rng imports {imported}; the determinism "
                    "root must stay stateless (stdlib typing/math + numpy "
                    "only)",
                )
            return
        if imported == "repro.experiments" or imported.startswith("repro.experiments."):
            if _under(module, _NO_EXPERIMENTS_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"{module} imports {imported} at module scope; only "
                    "the harness layer may depend on repro.experiments — "
                    "defer into the using function",
                )
        if imported == "repro.fleet" or imported.startswith("repro.fleet."):
            if _under(module, _NO_FLEET_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"{module} imports {imported} at module scope; "
                    "repro.fleet is the top of the stack — nothing below "
                    "it may depend on the orchestrator (defer into the "
                    "using function)",
                )
        if imported == "repro.obs" or imported.startswith("repro.obs."):
            if _under(module, _NO_OBS_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"{module} imports {imported} at module scope; "
                    "core/gametheory wire observability lazily (function-"
                    "level import or TYPE_CHECKING) so the model layer "
                    "loads without the obs machinery",
                )


def _module_scope_imports(ctx: FileContext) -> List[Tuple[ast.stmt, str]]:
    """(node, imported module) for every eager module-scope import.

    Recurses into plain ``if`` blocks at module scope (version guards)
    but skips ``if TYPE_CHECKING:`` bodies and ``try/except ImportError``
    fallbacks' handlers — both are established lazy/optional idioms.
    """
    out: List[Tuple[ast.stmt, str]] = []

    def visit(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    out.append((stmt, alias.name))
            elif isinstance(stmt, ast.ImportFrom):
                base = _import_from_base(ctx, stmt)
                if base:
                    out.append((stmt, base))
            elif isinstance(stmt, ast.If):
                if not _is_type_checking_test(stmt.test):
                    visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)

    visit(ctx.tree.body)
    return out


def _import_from_base(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    if not node.level:
        return node.module
    parts = ctx.module.split(".")
    pkg = parts[:-1]
    up = node.level - 1
    if up:
        pkg = pkg[: len(pkg) - up] if up <= len(pkg) else []
    base = ".".join(pkg)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base or None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
