"""ARCH001: import-layering violations; ARCH002: API-surface drift.

The dependency layering this repo maintains::

    repro.sim.rng          <- leaf: stdlib + numpy only
    repro.{core,gametheory,network,payment,sim}   <- simulation layers
    repro.obs              <- observational side-layer (wired lazily from
                              core; eager from network/payment/sim where
                              the bus is a constructor dependency)
    repro.experiments      <- harness: may import everything below
    repro.fleet            <- orchestrator: may import the harness and obs;
                              nothing below may import it back
    repro.analysis         <- dev tooling: stdlib only, imports nothing above

Three properties are enforced mechanically:

- ``repro.core`` / ``repro.gametheory`` never import ``repro.experiments``
  or ``repro.obs`` at module scope (lazy function-level or
  ``TYPE_CHECKING`` imports are fine) — the paper-facing model layers
  must be loadable, and testable, without dragging in the harness or the
  obs machinery;
- ``repro.sim.rng`` imports nothing stateful — it is the determinism
  root, and a stray dependency there can consume entropy or observe
  import order before any seed is set;
- nothing below the harness imports ``repro.experiments`` at module
  scope, and nothing outside ``repro.fleet`` itself imports
  ``repro.fleet`` at module scope — the sweep orchestrator sits at the
  very top of the stack (it may depend on the harness and obs, never
  the reverse; the ``repro fleet`` CLI wiring defers its import into
  the handler).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Import roots ``repro.sim.rng`` may use: pure, stateless machinery.
_RNG_ALLOWED_ROOTS = frozenset(
    {"__future__", "typing", "numpy", "math", "abc", "dataclasses", "collections"}
)

#: Layers that must not import the experiment harness at module scope.
_NO_EXPERIMENTS_PREFIXES = (
    "repro.core",
    "repro.gametheory",
    "repro.network",
    "repro.payment",
    "repro.sim",
    "repro.obs",
    "repro.adversary",
    "repro.analysis",
)

#: Layers that must not import the obs side-layer at module scope.
_NO_OBS_PREFIXES = ("repro.core", "repro.gametheory", "repro.analysis")

#: Everything below the sweep orchestrator: may never import repro.fleet
#: at module scope (the experiments CLI defers it into the handler).
_NO_FLEET_PREFIXES = (
    "repro.core",
    "repro.gametheory",
    "repro.network",
    "repro.payment",
    "repro.sim",
    "repro.obs",
    "repro.adversary",
    "repro.analysis",
    "repro.experiments",
)


def _under(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@register
class ImportLayeringRule(Rule):
    """ARCH001: module-scope import that crosses the layering."""

    code = "ARCH001"
    name = "import-layering"
    rationale = (
        "Layering keeps the paper-facing model (core/gametheory) loadable "
        "without the harness or obs machinery, and keeps repro.sim.rng — "
        "the determinism root — free of anything stateful.  Violations "
        "are fixed by deferring the import into the function that needs "
        "it or behind typing.TYPE_CHECKING."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module = ctx.module
        if not (module == "repro" or module.startswith("repro.")):
            return
        for node, imported in _module_scope_imports(ctx):
            yield from self._check_one(ctx, node, imported)

    def _check_one(
        self, ctx: FileContext, node: ast.stmt, imported: str
    ) -> Iterator[Finding]:
        module = ctx.module
        if module == "repro.sim.rng":
            root = imported.split(".")[0]
            if root not in _RNG_ALLOWED_ROOTS:
                yield self.finding(
                    ctx,
                    node,
                    f"repro.sim.rng imports {imported}; the determinism "
                    "root must stay stateless (stdlib typing/math + numpy "
                    "only)",
                )
            return
        if imported == "repro.experiments" or imported.startswith("repro.experiments."):
            if _under(module, _NO_EXPERIMENTS_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"{module} imports {imported} at module scope; only "
                    "the harness layer may depend on repro.experiments — "
                    "defer into the using function",
                )
        if imported == "repro.fleet" or imported.startswith("repro.fleet."):
            if _under(module, _NO_FLEET_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"{module} imports {imported} at module scope; "
                    "repro.fleet is the top of the stack — nothing below "
                    "it may depend on the orchestrator (defer into the "
                    "using function)",
                )
        if imported == "repro.obs" or imported.startswith("repro.obs."):
            if _under(module, _NO_OBS_PREFIXES):
                yield self.finding(
                    ctx,
                    node,
                    f"{module} imports {imported} at module scope; "
                    "core/gametheory wire observability lazily (function-"
                    "level import or TYPE_CHECKING) so the model layer "
                    "loads without the obs machinery",
                )


@register
class ApiSurfaceDriftRule(Rule):
    """ARCH002: public API drifted from the committed snapshot.

    Advisory (``gating = False``): a drift finding is a review prompt —
    "this PR changes the public surface, is that intended?" — not a
    defect, so it is reported but never fails the lint gate and is never
    baselined.  Refresh the snapshot with ``repro lint --api-surface
    api-surface.json`` when the change is intentional.

    The rule fires once per project run, anchored at the package root
    (``src/repro/__init__.py``), so the diff does not repeat per file.
    """

    code = "ARCH002"
    name = "api-surface-drift"
    requires_project = True
    gating = False
    rationale = (
        "Silent API drift — a renamed public function, a changed default, "
        "a new required argument — is how downstream scripts and the "
        "paper-figure notebooks rot.  The project graph already knows "
        "every public def/class/constant; snapshotting it to "
        "api-surface.json and diffing per run turns drift into an "
        "explicit, reviewable finding without gating (the snapshot is "
        "refreshed in the same PR when the change is deliberate)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None or ctx.module != "repro":
            return
        info = project.modules.get("repro")
        if info is None or info.ctx is not ctx:
            return
        path = getattr(project, "api_surface_path", None)
        snapshot = getattr(project, "api_snapshot", None)
        if snapshot is None:
            if path is not None:
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"no readable API surface snapshot at {path}; "
                    "regenerate with: repro lint --api-surface "
                    f"{getattr(path, 'name', path)}",
                )
            return
        current = project.api_surface()
        for message in _diff_surfaces(snapshot, current):
            yield self.finding(ctx, ctx.tree, f"API drift vs snapshot: {message}")


def _diff_surfaces(old: dict, new: dict) -> List[str]:
    """Human-readable drift lines, deterministic order."""
    out: List[str] = []
    old_mods = old.get("modules", {}) or {}
    new_mods = new.get("modules", {}) or {}
    for mod in sorted(set(old_mods) - set(new_mods)):
        out.append(f"public module {mod} removed")
    for mod in sorted(set(new_mods) - set(old_mods)):
        out.append(f"public module {mod} added")
    for mod in sorted(set(old_mods) & set(new_mods)):
        out.extend(_diff_module(mod, old_mods[mod] or {}, new_mods[mod] or {}))
    return out


def _diff_module(mod: str, old: dict, new: dict) -> List[str]:
    out: List[str] = []
    out.extend(
        _diff_signatures(
            f"{mod}.", old.get("functions", {}) or {}, new.get("functions", {}) or {}
        )
    )
    old_cls = old.get("classes", {}) or {}
    new_cls = new.get("classes", {}) or {}
    for name in sorted(set(old_cls) - set(new_cls)):
        out.append(f"class {mod}.{name} removed")
    for name in sorted(set(new_cls) - set(old_cls)):
        out.append(f"class {mod}.{name} added")
    for name in sorted(set(old_cls) & set(new_cls)):
        out.extend(
            _diff_signatures(
                f"{mod}.{name}.", old_cls[name] or {}, new_cls[name] or {}
            )
        )
    old_const = set(old.get("constants", []) or [])
    new_const = set(new.get("constants", []) or [])
    for name in sorted(old_const - new_const):
        out.append(f"public constant {mod}.{name} removed")
    for name in sorted(new_const - old_const):
        out.append(f"public constant {mod}.{name} added")
    return out


def _diff_signatures(prefix: str, old: dict, new: dict) -> List[str]:
    out: List[str] = []
    for name in sorted(set(old) - set(new)):
        out.append(f"{prefix}{name} removed")
    for name in sorted(set(new) - set(old)):
        out.append(f"{prefix}{name} added ({new[name]})")
    for name in sorted(set(old) & set(new)):
        if old[name] != new[name]:
            out.append(
                f"{prefix}{name} signature changed: {old[name]} -> {new[name]}"
            )
    return out


def _module_scope_imports(ctx: FileContext) -> List[Tuple[ast.stmt, str]]:
    """(node, imported module) for every eager module-scope import.

    Recurses into plain ``if`` blocks at module scope (version guards)
    but skips ``if TYPE_CHECKING:`` bodies and ``try/except ImportError``
    fallbacks' handlers — both are established lazy/optional idioms.
    """
    out: List[Tuple[ast.stmt, str]] = []

    def visit(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    out.append((stmt, alias.name))
            elif isinstance(stmt, ast.ImportFrom):
                base = _import_from_base(ctx, stmt)
                if base:
                    out.append((stmt, base))
            elif isinstance(stmt, ast.If):
                if not _is_type_checking_test(stmt.test):
                    visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)

    visit(ctx.tree.body)
    return out


def _import_from_base(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    if not node.level:
        return node.module
    parts = ctx.module.split(".")
    pkg = parts[:-1]
    up = node.level - 1
    if up:
        pkg = pkg[: len(pkg) - up] if up <= len(pkg) else []
    base = ".".join(pkg)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base or None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
