"""Concurrency / fork-safety rules CONC001-CONC003.

Every open ROADMAP item moves work across a process or task boundary:
the sharded scenario engine fans world shards over a pool, the fleet
runner already ships jobs to ``ProcessPoolExecutor`` workers, and the
live service mode will run the protocol under asyncio.  The failure
modes that matter there are interprocedural and invisible to per-file
rules:

- CONC001 — a callable submitted to a pool that does not survive the
  trip: lambdas and nested defs do not pickle, and a picklable function
  that *reaches* unpicklable ambient state (open file handles, live
  sockets, ``threading.local``, tracers) either crashes at submit time
  or, worse under fork, silently aliases live parent handles;
- CONC002 — a write to module-level mutable state reachable from a
  worker entry point: each worker mutates its own copy, the parent never
  sees it, and results silently depend on which process ran what;
- CONC003 — a blocking call inside an ``async def``: one ``time.sleep``
  or sync ``subprocess.run`` stalls the whole event loop, which at
  thousands of concurrent connection series is an outage, not a slowdown.

CONC001/CONC002 are project-aware (they consult ``ctx.project``'s call
graph and symbol table, and degrade to a lexical check / no-op when a
file is linted alone); CONC003 is purely lexical.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.astutils import dotted_name, resolve_call_target
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Executor methods taking a callable first argument (lexical fallback;
#: the project resolver has its own richer matching).
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)

#: Blocking call -> suggested asyncio-native replacement (CONC003).
_BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "await asyncio.sleep(...)",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "subprocess.getoutput": "asyncio.create_subprocess_shell",
    "subprocess.getstatusoutput": "asyncio.create_subprocess_shell",
    "socket.create_connection": "asyncio.open_connection",
    "urllib.request.urlopen": "loop.run_in_executor(None, ...)",
    "http.client.HTTPConnection": "asyncio.open_connection",
    "http.client.HTTPSConnection": "asyncio.open_connection",
    "open": "loop.run_in_executor(None, ...) (or do the I/O before "
    "entering the async path)",
}

#: Socket/file methods that block when called on a sync object inside an
#: async body.  Matched on receivers whose name suggests a socket/conn.
_BLOCKING_METHODS = frozenset({"recv", "recv_into", "accept", "connect", "sendall"})
_SOCKETISH = ("sock", "socket", "conn", "connection")


def _project_for(ctx: FileContext):
    """The usable ProjectContext for ``ctx``, if any.

    ``None`` when linting a single file, or when this file is a
    duplicate-module scratch copy the project resolved to another path.
    """
    project = ctx.project
    if project is None:
        return None
    info = project.modules.get(ctx.module)
    if info is None or info.ctx is not ctx:
        return None
    return project


@register
class UnpicklableSubmissionRule(Rule):
    """CONC001: pool submission that cannot cross the process boundary."""

    code = "CONC001"
    name = "unpicklable-pool-submission"
    requires_project = True
    rationale = (
        "A ProcessPoolExecutor task is pickled in the parent and rebuilt "
        "in the worker: lambdas and nested defs fail outright, and a "
        "task that reaches module-level file handles, sockets, "
        "threading.local or live tracers either fails to pickle or — "
        "under the fork start method — silently shares parent OS state "
        "(file offsets, half-held locks) across processes.  Submit "
        "top-level functions whose transitive state is plain data; "
        "re-open handles inside the worker."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = _project_for(ctx)
        if project is not None:
            yield from self._check_project(ctx, project)
        else:
            yield from self._check_lexical(ctx)

    # -- project mode ------------------------------------------------------
    def _check_project(self, ctx: FileContext, project) -> Iterator[Finding]:
        for fn in project.functions_in(ctx.module):
            for sub in fn.submissions:
                yield from self._check_submission(ctx, project, sub)

    def _check_submission(self, ctx: FileContext, project, sub) -> Iterator[Finding]:
        if isinstance(sub.callable_node, ast.Lambda):
            yield self.finding(
                ctx,
                sub.callable_node,
                f"lambda submitted via {sub.via} cannot be pickled into a "
                "pool worker; submit a top-level function",
            )
            return
        for arg in sub.arg_nodes:
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    ctx,
                    arg,
                    f"lambda argument in {sub.via} submission cannot be "
                    "pickled into a pool worker; pass plain data or a "
                    "top-level function",
                )
        seen: Set[Tuple[str, str]] = set()
        for target in sub.targets:
            tf = project.functions.get(target)
            if tf is None:
                continue
            if tf.is_nested:
                yield self.finding(
                    ctx,
                    sub.callable_node,
                    f"nested function {target} submitted via {sub.via} "
                    "cannot be pickled into a pool worker; hoist it to "
                    "module level",
                )
                continue
            reach = project.reachable_from([target])
            for reached in sorted(reach):
                rf = project.functions[reached]
                mod_info = project.modules.get(rf.module)
                if mod_info is None:
                    continue
                for name in sorted(rf.loaded_names()):
                    hit = _hazard_global(project, mod_info, name)
                    if hit is None:
                        continue
                    mod, gname, lineno, kind = hit
                    key = (mod, gname)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        ctx,
                        sub.node,
                        f"callable {target} submitted via {sub.via} reaches "
                        f"unpicklable ambient state: {kind} "
                        f"{mod}.{gname} (defined line {lineno}, read "
                        f"in {reached}); workers must rebuild such state "
                        "locally",
                    )

    # -- lexical fallback --------------------------------------------------
    def _check_lexical(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and node.args
            ):
                continue
            base = dotted_name(node.func.value) or ""
            last = base.split(".")[-1].lower()
            looks_like_pool = any(t in last for t in ("pool", "executor", "exec"))
            if not looks_like_pool and not _is_executor_ctor(node.func.value, ctx):
                continue
            if isinstance(node.args[0], ast.Lambda):
                yield self.finding(
                    ctx,
                    node.args[0],
                    f"lambda submitted via .{node.func.attr}() cannot be "
                    "pickled into a pool worker; submit a top-level "
                    "function",
                )


def _hazard_global(
    project, mod_info, name: str
) -> Optional[Tuple[str, str, int, str]]:
    """(module, name, lineno, kind) when ``name`` in ``mod_info``'s file
    denotes a fork-hazardous module-level object — defined there, or
    imported from another project module."""
    if name in mod_info.hazard_globals and name not in mod_info.ctx.imports:
        lineno, kind = mod_info.hazard_globals[name]
        return (mod_info.module, name, lineno, kind)
    target = mod_info.ctx.imports.get(name)
    if target and "." in target:
        mod, _, attr = target.rpartition(".")
        other = project.modules.get(mod)
        if other is not None and attr in other.hazard_globals:
            lineno, kind = other.hazard_globals[attr]
            return (mod, attr, lineno, kind)
    return None


def _is_executor_ctor(node: ast.AST, ctx: FileContext) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = resolve_call_target(node, ctx.imports)
    return target in (
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "multiprocessing.Pool",
    )


@register
class WorkerSharedStateRule(Rule):
    """CONC002: module-global mutation reachable from a worker entrypoint."""

    code = "CONC002"
    name = "worker-mutates-module-state"
    requires_project = True
    rationale = (
        "Pool workers are separate processes: a write to module-level "
        "mutable state (caches, registries, counters) from code a worker "
        "entry point can reach mutates the *worker's* copy only — the "
        "parent and sibling workers never observe it, so results depend "
        "on process scheduling.  Worker-reachable code must treat module "
        "globals as frozen configuration; mutable accumulation belongs "
        "in the job result (merged by the parent) or the durable store."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = _project_for(ctx)
        if project is None:
            return
        entrypoints = project.worker_entrypoints()
        if not entrypoints:
            return
        reach = project.reachable_from(entrypoints)
        for fn in project.functions_in(ctx.module):
            if fn.name == "<module>":
                continue
            witness = reach.get(fn.qualname)
            if witness is None:
                continue
            yield from self._check_fn(ctx, project, fn, witness)

    def _check_fn(self, ctx: FileContext, project, fn, witness: str) -> Iterator[Finding]:
        locals_, globals_decl = _scope_bindings(fn.node)
        # Walk fn's own scope only: nested defs are separate FunctionInfos.
        for node in _walk_own_scope_stmts(fn.node):
            yield from self._check_node(
                ctx, project, fn, witness, node, locals_, globals_decl
            )

    def _check_node(
        self,
        ctx: FileContext,
        project,
        fn,
        witness: str,
        node: ast.AST,
        locals_: Set[str],
        globals_decl: Set[str],
    ) -> Iterator[Finding]:
        # global NAME; NAME = ... / NAME += ...  (rebinding is lost per-worker
        # whatever the value's type).
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in globals_decl:
                    yield self.finding(
                        ctx,
                        node,
                        f"{fn.qualname} rebinds module global {target.id!r} "
                        f"and is reachable from worker entrypoint {witness}; "
                        "worker-side writes are per-process and silently "
                        "lost — return the value in the job result instead",
                    )
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    hit = self._mutable_global(
                        ctx, project, target.value.id, locals_
                    )
                    if hit is not None:
                        mod, name, lineno = hit
                        yield self.finding(
                            ctx,
                            node,
                            f"{fn.qualname} writes into module-level mutable "
                            f"state {mod}.{name} (defined line {lineno}) and "
                            f"is reachable from worker entrypoint {witness}; "
                            "per-process mutation diverges silently — "
                            "accumulate in the job result or the store",
                        )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            from repro.analysis.project import MUTATOR_METHODS

            if node.func.attr in MUTATOR_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                hit = self._mutable_global(ctx, project, node.func.value.id, locals_)
                if hit is not None:
                    mod, name, lineno = hit
                    yield self.finding(
                        ctx,
                        node,
                        f"{fn.qualname} calls .{node.func.attr}() on "
                        f"module-level mutable state {mod}.{name} (defined "
                        f"line {lineno}) and is reachable from worker "
                        f"entrypoint {witness}; per-process mutation "
                        "diverges silently — accumulate in the job result "
                        "or the store",
                    )

    def _mutable_global(
        self, ctx: FileContext, project, name: str, locals_: Set[str]
    ) -> Optional[Tuple[str, str, int]]:
        """(module, name, def lineno) when ``name`` denotes module-level
        mutable state — defined here or imported from another module."""
        if name in locals_:
            return None
        info = project.modules.get(ctx.module)
        if info is not None and name in info.mutable_globals and name not in ctx.imports:
            lineno, _ctor = info.mutable_globals[name]
            return (ctx.module, name, lineno)
        target = ctx.imports.get(name)
        if target and "." in target:
            mod, _, attr = target.rpartition(".")
            other = project.modules.get(mod)
            if other is not None and attr in other.mutable_globals:
                lineno, _ctor = other.mutable_globals[attr]
                return (mod, attr, lineno)
        return None


@register
class BlockingInAsyncRule(Rule):
    """CONC003: blocking call inside an ``async def`` body."""

    code = "CONC003"
    name = "blocking-call-in-async"
    rationale = (
        "The live service mode runs thousands of concurrent connection "
        "series on one event loop; a single synchronous time.sleep, "
        "subprocess.run, blocking socket call or file open inside an "
        "async def stalls every coroutine on the loop for its full "
        "duration.  Use the asyncio-native equivalent, or push the "
        "blocking work through loop.run_in_executor."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ctx.imports
        for qual, func in _iter_async_functions(ctx.tree):
            # Walk func's own scope: nested (async) defs are themselves
            # yielded by _iter_async_functions and checked separately.
            for node in _walk_own_scope_stmts(func):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(ctx, qual, node, imports)

    def _check_call(
        self, ctx: FileContext, qual: str, node: ast.Call, imports: Dict[str, str]
    ) -> Iterator[Finding]:
        target = resolve_call_target(node, imports)
        if target in _BLOCKING_CALLS:
            yield self.finding(
                ctx,
                node,
                f"blocking call {target}() inside async def {qual} stalls "
                f"the event loop; use {_BLOCKING_CALLS[target]}",
            )
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_METHODS:
            base = dotted_name(func.value) or ""
            last = base.split(".")[-1].lower()
            if any(tag in last for tag in _SOCKETISH):
                yield self.finding(
                    ctx,
                    node,
                    f"blocking socket call .{func.attr}() on {base!r} inside "
                    f"async def {qual} stalls the event loop; use the "
                    "asyncio stream API (asyncio.open_connection / "
                    "StreamReader/Writer)",
                )


def _iter_async_functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AsyncFunctionDef]]:
    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    return walk(tree, "")


def _walk_own_scope_stmts(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield from _walk_own_scope_stmts(child)


def _scope_bindings(func: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(plain local names, names declared ``global``) in ``func``'s scope."""
    locals_: Set[str] = set()
    globals_decl: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            locals_.add(arg.arg)
    for node in _walk_own_scope_stmts(func):
        if isinstance(node, ast.Global):
            globals_decl.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locals_.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                locals_.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    locals_.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            locals_.add(sub.id)
    locals_ -= globals_decl
    return locals_, globals_decl
