"""Determinism rules DET001-DET005.

Every correctness claim the reproduction makes — bit-identical golden
runs, seed+FaultPlan => identical degradation, obs-disabled runs
identical to goldens — rests on conventions these rules mechanise:

- all randomness flows through named, seeded substreams
  (:mod:`repro.sim.rng`);
- simulated paths read the engine clock, never the wall clock;
- RNG draws never consume from an unordered iteration;
- observability emissions happen strictly *after* the draws they
  describe;
- and (DET005, project-aware) no code *transitively reachable* from the
  sim hot-path entry points reads the wall clock or the process-global
  RNG, even when it lives lexically outside the sim module scopes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.astutils import (
    collect_set_vars,
    contains_rng_draw,
    find_unordered_source,
    is_rng_draw,
    iter_functions,
    receiver_base_name,
    resolve_call_target,
)
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Packages whose runtime behaviour feeds simulation results.  The obs
#: layer (SpanTracer wall timings) and the experiment harness (phase
#: timings, reports) are deliberately outside: their wall-clock use is
#: observational and determinism-neutral by construction.
SIM_SCOPES = (
    "repro.sim",
    "repro.core",
    "repro.network",
    "repro.payment",
    "repro.gametheory",
)

#: ``random`` module-level functions that mutate/consume the process-wide
#: global state.  ``random.Random(seed)`` instances are fine.
_STDLIB_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "getrandbits",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "lognormvariate",
    }
)

#: ``numpy.random`` module-level (legacy global ``RandomState``) API.
_NUMPY_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "get_state",
        "set_state",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _in_sim_scope(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".") for scope in SIM_SCOPES
    )


@register
class UnseededRandomRule(Rule):
    """DET001: module-level or unseeded RNG use outside ``repro.sim.rng``."""

    code = "DET001"
    name = "unseeded-random"
    rationale = (
        "All randomness must flow through named, seeded substreams "
        "(repro.sim.rng.RandomStreams) so components stay statistically "
        "decoupled and every run replays from its seed.  Global-state "
        "draws (random.*, numpy.random.*) and unseeded generators "
        "(default_rng(), random.Random()) make results depend on import "
        "order, test order, and process history."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == "repro.sim.rng":
            return
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            msg = self._violation(target, node)
            if msg:
                yield self.finding(ctx, node, msg)

    def _violation(self, target: str, node: ast.Call) -> Optional[str]:
        mod, _, attr = target.rpartition(".")
        if mod == "random" and attr in _STDLIB_GLOBAL_DRAWS:
            return (
                f"global-state draw random.{attr}(); use a seeded "
                "RandomStreams substream (or random.Random(seed) in tests)"
            )
        if target == "random.SystemRandom":
            return "random.SystemRandom is nondeterministic by design"
        if mod == "numpy.random" and attr in _NUMPY_GLOBAL_DRAWS:
            return (
                f"global-state draw numpy.random.{attr}(); use a seeded "
                "Generator from repro.sim.rng.RandomStreams"
            )
        if target in ("numpy.random.default_rng", "random.Random"):
            if not node.args and not node.keywords:
                return (
                    f"unseeded {target}(); pass an explicit seed or derive "
                    "from a RandomStreams substream"
                )
        return None


@register
class WallClockRule(Rule):
    """DET002: wall-clock reads inside deterministic simulation paths."""

    code = "DET002"
    name = "wall-clock-in-sim-path"
    rationale = (
        "Simulated time comes from the discrete-event engine clock "
        "(Environment.now); wall-clock reads in sim/core/network/payment/"
        "gametheory paths leak host timing into results and break "
        "bit-identical replays.  Wall-time measurement belongs to the obs "
        "layer: wrap the region in a SpanTracer span instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_sim_scope(ctx.module):
            return
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {target}() in deterministic path "
                    f"{ctx.module}; route through the engine clock "
                    "(Environment.now) or a SpanTracer span",
                )


@register
class UnorderedIterationRule(Rule):
    """DET003: unordered collection feeding an RNG draw."""

    code = "DET003"
    name = "unordered-iteration-feeds-rng"
    rationale = (
        "set/dict iteration order is an implementation detail (hash "
        "seeding, insertion history); letting it select *which* element "
        "an RNG draw picks — or *how many* draws run before a shared "
        "stream is consumed elsewhere — silently changes replays.  Sort "
        "first (sorted(...)), then draw."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: List[Tuple[str, ast.AST]] = [("<module>", ctx.tree)]
        scopes.extend(iter_functions(ctx.tree))
        for qual, func in scopes:
            set_vars = collect_set_vars(func)
            yield from self._check_scope(ctx, qual, func, set_vars)

    def _check_scope(
        self,
        ctx: FileContext,
        qual: str,
        func: ast.AST,
        set_vars: Dict[str, int],
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes are visited by iter_functions
            for sub in _walk_skip_functions(node):
                if is_rng_draw(sub):
                    assert isinstance(sub, ast.Call)
                    source = None
                    for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                        source = find_unordered_source(arg, set_vars)
                        if source is not None:
                            break
                    if source is not None:
                        yield self.finding(
                            ctx,
                            sub,
                            f"RNG draw in {qual} consumes an unordered "
                            f"{_describe(source)}; sort before drawing "
                            "(e.g. rng.choice(sorted(candidates)))",
                        )
                elif isinstance(sub, ast.For):
                    source = find_unordered_source(sub.iter, set_vars)
                    if source is None:
                        continue
                    draw = contains_rng_draw(sub)
                    if draw is not None:
                        yield self.finding(
                            ctx,
                            sub,
                            f"loop in {qual} iterates an unordered "
                            f"{_describe(source)} and draws from an RNG "
                            f"(line {draw.lineno}); iterate sorted(...) so "
                            "draw order is reproducible",
                        )


@register
class EmitBeforeDrawRule(Rule):
    """DET004: obs emission precedes the RNG draw it describes."""

    code = "DET004"
    name = "emit-before-draw"
    rationale = (
        "The obs layer is determinism-neutral because events are emitted "
        "strictly after the draws they describe: the event then carries "
        "the decided outcome, and toggling obs on/off cannot reorder or "
        "interleave with stream consumption.  An emit() ahead of a draw "
        "in the same block describes a decision that has not happened yet."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        for qual, func in iter_functions(ctx.tree):
            body = getattr(func, "body", None)
            if body:
                yield from self._check_block(ctx, qual, body, None)

    def _check_block(
        self,
        ctx: FileContext,
        qual: str,
        stmts: List[ast.stmt],
        ancestor_draw: Optional[ast.Call],
    ) -> Iterator[Finding]:
        """Check one statement list.

        ``ancestor_draw`` is a draw that runs *after* this whole block in
        an enclosing block (so an emit anywhere here still precedes it).
        Emits are collected at each statement's own level only — the
        header of a compound statement, or the whole of a simple one;
        nested blocks are handled by recursion with the ancestor flag.
        A draw earlier in the same loop body does not trip the rule:
        cross-iteration order (emit of round *i* before the draw of round
        *i+1*) is exactly the allowed convention.
        """
        # Draws anywhere under each statement (index -> first draw).
        subtree_draws: List[Tuple[int, ast.Call]] = []
        for idx, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are checked via iter_functions
            for sub in _walk_skip_functions(stmt):
                if is_rng_draw(sub):
                    subtree_draws.append((idx, sub))

        def first_draw_after(idx: int) -> Optional[ast.Call]:
            for j, draw in subtree_draws:
                if j > idx:
                    return draw
            return ancestor_draw

        for idx, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            draw = first_draw_after(idx)
            if draw is not None:
                for sub in _walk_own_level(stmt):
                    if _is_bus_emit(sub):
                        yield self.finding(
                            ctx,
                            sub,
                            f"emit() in {qual} precedes an RNG draw at line "
                            f"{draw.lineno}; emit strictly after the draw "
                            "it describes",
                        )
            for child_block in _child_blocks(stmt):
                yield from self._check_block(ctx, qual, child_block, draw)


@register
class ReachableNondeterminismRule(Rule):
    """DET005: nondeterminism reachable from a sim hot-path entry point.

    DET002 polices the sim module scopes lexically; this rule follows the
    *call graph* instead, catching a wall-clock read or global RNG draw
    in a helper module (``repro.experiments`` utilities, future service
    code) that the hot path actually executes.  Sim-scope modules are
    skipped (DET001/DET002 already own them) and ``repro.obs`` is exempt
    by design — its wall-clock use is observational and never feeds
    results.
    """

    code = "DET005"
    name = "reachable-nondeterminism"
    requires_project = True
    rationale = (
        "Seed -> result determinism is a whole-program property: a "
        "wall-clock read or process-global RNG draw breaks replays from "
        "*anywhere* the hot path can reach, not just from modules named "
        "sim/core/network.  DET005 computes reachability from the sim "
        "entry points (run_scenario, PathBuilder.build_round, the kernel "
        "batch calls) over the project call graph and flags hazards in "
        "reached functions that the lexical rules cannot see."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None:
            return
        module = ctx.module
        if not (module == "repro" or module.startswith("repro.")):
            return
        if _in_sim_scope(module):
            return  # DET001/DET002 police these lexically, everywhere
        if module == "repro.obs" or module.startswith("repro.obs."):
            return  # observational wall-clock by design
        info = project.modules.get(module)
        if info is None or info.ctx is not ctx:
            return  # duplicate module name: the project tracks another copy
        from repro.analysis.project import SIM_HOT_ENTRY_POINTS

        reach = project.reachable_from(SIM_HOT_ENTRY_POINTS)
        imports = ctx.imports
        for fn in project.functions_in(module):
            witness = reach.get(fn.qualname)
            if witness is None:
                continue
            # Walk fn's own scope only: nested defs are separate
            # FunctionInfos, flagged iff themselves reachable.
            for sub in _walk_skip_functions(fn.node):
                if not isinstance(sub, ast.Call):
                    continue
                target = resolve_call_target(sub, imports)
                if target is None:
                    continue
                hazard = self._hazard(target, sub)
                if hazard:
                    yield self.finding(
                        ctx,
                        sub,
                        f"{hazard} in {fn.qualname}, which is reachable "
                        f"from sim entry point {witness}; hot-path "
                        "callees must stay deterministic (engine clock "
                        "/ seeded substreams only)",
                    )

    def _hazard(self, target: str, node: ast.Call) -> Optional[str]:
        if target in _WALL_CLOCK_CALLS:
            return f"wall-clock call {target}()"
        mod, _, attr = target.rpartition(".")
        if mod == "random" and attr in _STDLIB_GLOBAL_DRAWS:
            return f"global-state draw random.{attr}()"
        if mod == "numpy.random" and attr in _NUMPY_GLOBAL_DRAWS:
            return f"global-state draw numpy.random.{attr}()"
        if target in ("numpy.random.default_rng", "random.Random"):
            if not node.args and not node.keywords:
                return f"unseeded {target}()"
        return None


def _is_bus_emit(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr != "emit":
        return False
    base = receiver_base_name(node.func.value)
    return bool(base and "bus" in base.lower())


def _walk_skip_functions(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield from _walk_skip_functions(child)


def _walk_own_level(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The parts of a statement executed *at its block position*.

    For compound statements that is only the header (``if`` test, ``for``
    iterable, ``with`` items, ...); their bodies belong to nested blocks
    and are visited by the block recursion.  Simple statements are walked
    whole (minus nested scopes).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield from _walk_skip_functions(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from _walk_skip_functions(stmt.target)
        yield from _walk_skip_functions(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from _walk_skip_functions(item.context_expr)
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, ast.Match):
        yield from _walk_skip_functions(stmt.subject)
    else:
        yield from _walk_skip_functions(stmt)


def _child_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """Nested statement lists of a compound statement (if/for/with/try)."""
    blocks: List[List[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:
        blocks.append(case.body)
    return blocks


def _describe(node: ast.AST) -> str:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal/comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return f"{node.func.id}(...) result"
        if isinstance(node.func, ast.Attribute):
            return f".{node.func.attr}() view"
    if isinstance(node, ast.Name):
        return f"set-typed local {node.id!r}"
    return "collection"
