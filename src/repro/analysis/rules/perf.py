"""Performance rules: PERF001 (thread-local in loop), PERF002 (Python
loop over a numpy array), PERF003 (array world rebuilt in a loop).

PERF001 — ``repro.sim.monitoring.PERF`` is a ``threading.local``-backed
facade: an attribute access costs ~5x a plain increment because it
routes through the per-thread lookup every time.  The hot-path
convention (established when the routing hot path was profiled) is to
prebind the per-thread instance once — ``perf = PERF.counters`` — before
the loop and increment through the plain object inside it.  This rule
flags the regression the prebinding fixed: facade attribute access (read
or write) lexically inside a loop body.

PERF002 — iterating a numpy array element by element from Python
(``for x in arr`` or ``arr[i]`` with a loop index) pays a boxed
``np.float64`` allocation per element and defeats the point of holding
the data in an array.  The vectorised-kernel convention
(:mod:`repro.core.kernels`) is: batch the operation as array
expressions, or — when per-element Python work is genuinely required,
e.g. the RNG-ordered cost loop — convert once with ``.tolist()`` and
loop over native objects.  Scoped to ``repro.core`` / ``repro.network``,
the layers that hold hot-path arrays.

PERF003 — :class:`repro.core.kernels.WorldArrays` and
:class:`~repro.core.kernels.BatchPlanner` are built to be constructed
*once* and kept fresh through version counters (``neighbors_version``,
``availability_version``, ``liveness_version``); rebuilding one per loop
iteration re-snapshots the whole overlay (O(N·d) + allocation) on every
pass and throws away all cached frontier state.  The regression is easy
to introduce — a per-round helper that "just makes a view" — and
profiling PR 5 showed the per-round ``KernelView`` constructions alone
cost ~8% of the scenario hot path, which is why the planner now lives on
the builder.  Scoped like PERF002.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.astutils import dotted_name
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_PERF_QUALNAME = "repro.sim.monitoring.PERF"


@register
class ThreadLocalInLoopRule(Rule):
    """PERF001: ``PERF.x`` (or any thread-local alias) inside a loop."""

    code = "PERF001"
    name = "thread-local-in-loop"
    rationale = (
        "threading.local attribute access pays a per-thread dict lookup "
        "on every operation; in the routing hot loop that measured ~5x a "
        "plain increment.  Prebind the per-thread object once outside the "
        "loop (perf = PERF.counters) and use plain attribute access "
        "inside."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        tracked = _thread_local_names(ctx)
        if not tracked and _PERF_QUALNAME not in ctx.imports.values():
            # Cheap bail-out: nothing resolvable to a thread-local here.
            modules = {v.split(".")[0] for v in ctx.imports.values()}
            if "threading" not in modules and "repro" not in modules:
                return
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, tracked, in_loop=False, out=findings)
        yield from findings

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        tracked: Set[str],
        in_loop: bool,
        out: List[Finding],
    ) -> None:
        if in_loop and isinstance(node, ast.Attribute):
            if self._is_thread_local_base(ctx, node.value, tracked):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"thread-local attribute access "
                        f"{dotted_name(node) or node.attr} inside a loop; "
                        "prebind the per-thread object before the loop "
                        "(e.g. perf = PERF.counters)",
                    )
                )
                return  # don't re-flag the inner chain of a.b.c
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            header = node.iter if isinstance(node, (ast.For, ast.AsyncFor)) else node.test
            self._visit(ctx, header, tracked, in_loop, out)
            for stmt in list(node.body) + list(node.orelse):
                self._visit(ctx, stmt, tracked, in_loop=True, out=out)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A def inside a loop binds, it does not access per-iteration;
            # loops *inside* the nested function are found on recursion.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for stmt in body:
                self._visit(ctx, stmt, tracked, in_loop=False, out=out)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, tracked, in_loop, out)

    def _is_thread_local_base(
        self, ctx: FileContext, value: ast.expr, tracked: Set[str]
    ) -> bool:
        name = dotted_name(value)
        if name is None:
            return False
        if name in tracked:
            return True
        head, _, rest = name.partition(".")
        resolved = ctx.imports.get(head)
        if resolved is None:
            return False
        full = f"{resolved}.{rest}" if rest else resolved
        return full == _PERF_QUALNAME


@register
class NumpyElementLoopRule(Rule):
    """PERF002: per-element Python iteration over a numpy array."""

    code = "PERF002"
    name = "python-loop-over-array"
    rationale = (
        "a Python-level loop over a numpy array boxes every element into "
        "a fresh np.float64 and round-trips the interpreter per item — "
        "the exact overhead the array representation exists to avoid.  "
        "Batch the work as vectorised array expressions (see "
        "repro.core.kernels); when per-element Python work is required "
        "(e.g. an RNG-ordered draw sequence), convert once with "
        ".tolist() and iterate native objects."
    )

    #: Layers that hold hot-path arrays; experiment/reporting code may
    #: iterate small result arrays without it mattering.
    _SCOPES = ("repro.core.", "repro.network.")

    #: Methods that leave array-land: their results are native objects,
    #: so names assigned from them are exempt (and assigning through
    #: ``.tolist()`` is exactly the sanctioned fix).
    _UNTAINT_METHODS = frozenset({"tolist", "item", "tobytes"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self._SCOPES):
            return
        if not any(v == "numpy" or v.startswith("numpy.") for v in ctx.imports.values()):
            return
        tainted = self._array_names(ctx)
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, tainted, loop_vars=set(), out=findings)
        yield from findings

    # -- taint collection -------------------------------------------------
    def _array_names(self, ctx: FileContext) -> Set[str]:
        """Names assigned (anywhere in the file) from a numpy call.

        Flow-insensitive: one numpy-producing assignment taints the name
        for the whole file; one ``.tolist()`` / ``.item()`` assignment
        untaints it again.  Parameters and attribute chains are not
        tracked — a heuristic with a small, noqa-able false surface.
        """
        tainted: Set[str] = set()
        untainted: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if self._is_numpy_call(ctx, node.value):
                tainted.add(target.id)
            elif (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in self._UNTAINT_METHODS
            ):
                untainted.add(target.id)
        return tainted - untainted

    def _is_numpy_call(self, ctx: FileContext, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = dotted_name(value.func)
        if name is None:
            return False
        head, _, rest = name.partition(".")
        resolved = ctx.imports.get(head)
        if resolved is None:
            return False
        full = f"{resolved}.{rest}" if rest else resolved
        return full == "numpy" or full.startswith("numpy.")

    # -- traversal --------------------------------------------------------
    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        tainted: Set[str],
        loop_vars: Set[str],
        out: List[Finding],
    ) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iterable(ctx, node.iter, tainted, out)
            self._visit(ctx, node.iter, tainted, loop_vars, out)
            inner = loop_vars | self._target_names(node.target)
            for stmt in list(node.body) + list(node.orelse):
                self._visit(ctx, stmt, tainted, inner, out)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            inner = set(loop_vars)
            for comp in node.generators:
                self._check_iterable(ctx, comp.iter, tainted, out)
                self._visit(ctx, comp.iter, tainted, inner, out)
                inner = inner | self._target_names(comp.target)
                for cond in comp.ifs:
                    self._visit(ctx, cond, tainted, inner, out)
            elts = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            for elt in elts:
                self._visit(ctx, elt, tainted, inner, out)
            return
        if isinstance(node, ast.Subscript) and loop_vars:
            base, idx = node.value, node.slice
            if (
                isinstance(base, ast.Name)
                and base.id in tainted
                and isinstance(idx, ast.Name)
                and idx.id in loop_vars
            ):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"scalar element access {base.id}[{idx.id}] per loop "
                        "iteration; vectorise the loop body or convert once "
                        f"with {base.id}.tolist()",
                    )
                )
                return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Loop variables do not leak into a nested function's body.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for stmt in body:
                self._visit(ctx, stmt, tainted, set(), out)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, tainted, loop_vars, out)

    def _check_iterable(
        self, ctx: FileContext, iterable: ast.expr, tainted: Set[str], out: List[Finding]
    ) -> None:
        is_array = (
            isinstance(iterable, ast.Name) and iterable.id in tainted
        ) or self._is_numpy_call(ctx, iterable)
        if is_array:
            shown = dotted_name(iterable) or "array"
            out.append(
                self.finding(
                    ctx,
                    iterable,
                    f"element-wise Python iteration over numpy array "
                    f"{shown}; vectorise the loop body or convert once "
                    "with .tolist()",
                )
            )

    @staticmethod
    def _target_names(target: ast.expr) -> Set[str]:
        return {
            n.id for n in ast.walk(target) if isinstance(n, ast.Name)
        }


#: Constructors that snapshot the whole overlay into arrays; building one
#: is amortised setup, building one per iteration is the regression.
_WORLD_QUALNAMES = frozenset(
    {
        "repro.core.kernels.WorldArrays",
        "repro.core.kernels.BatchPlanner",
        "repro.core.kernels.KernelView",  # legacy name, kept so old code trips too
    }
)


@register
class ArrayWorldRebuildInLoopRule(Rule):
    """PERF003: WorldArrays/BatchPlanner constructed inside a loop."""

    code = "PERF003"
    name = "array-world-rebuild-in-loop"
    rationale = (
        "WorldArrays/BatchPlanner snapshot the whole overlay into CSR "
        "arrays at construction and stay fresh through version counters; "
        "constructing one per loop iteration pays the O(N*d) rebuild on "
        "every pass and discards all cached frontier state.  Build the "
        "world once outside the loop (e.g. keep it on the PathBuilder) "
        "and let ensure_fresh() notice changes."
    )

    #: Same layers PERF002 polices — where the hot-path arrays live.
    _SCOPES = ("repro.core.", "repro.network.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self._SCOPES):
            return
        if not any(
            v in _WORLD_QUALNAMES or v.startswith("repro.core.kernels")
            for v in ctx.imports.values()
        ):
            return
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, in_loop=False, out=findings)
        yield from findings

    def _visit(
        self, ctx: FileContext, node: ast.AST, in_loop: bool, out: List[Finding]
    ) -> None:
        if in_loop and isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and self._resolves_to_world(ctx, name):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"{name}(...) constructed inside a loop; the array "
                        "world is built once and kept fresh via version "
                        "counters — hoist the construction out of the loop",
                    )
                )
                # Still recurse into the arguments: a nested construction
                # (rare, but possible) is a second, distinct rebuild.
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            header = node.iter if isinstance(node, (ast.For, ast.AsyncFor)) else node.test
            self._visit(ctx, header, in_loop, out)
            for stmt in list(node.body) + list(node.orelse):
                self._visit(ctx, stmt, in_loop=True, out=out)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A def inside a loop only binds; per-iteration construction
            # inside the nested body is found on recursion from scratch.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for stmt in body:
                self._visit(ctx, stmt, in_loop=False, out=out)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, in_loop, out)

    def _resolves_to_world(self, ctx: FileContext, name: str) -> bool:
        if name in _WORLD_QUALNAMES:
            return True
        head, _, rest = name.partition(".")
        resolved = ctx.imports.get(head)
        if resolved is None:
            return False
        full = f"{resolved}.{rest}" if rest else resolved
        return full in _WORLD_QUALNAMES


def _thread_local_names(ctx: FileContext) -> Set[str]:
    """Names bound (anywhere in the file) to a thread-local instance.

    Tracks ``x = threading.local()``, instantiations of classes defined
    in-file that inherit ``threading.local``, and aliases imported as
    ``from repro.sim.monitoring import PERF``.  The ``ThreadLocalPerf``
    facade itself is matched through the import-resolution path.
    """
    local_classes: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = dotted_name(base)
                if base_name and base_name.split(".")[-1] == "local":
                    local_classes.add(node.name)
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        callee = dotted_name(node.value.func)
        if callee is None:
            continue
        if callee.split(".")[-1] == "local" or callee in local_classes:
            names.add(target.id)
    for local, resolved in ctx.imports.items():
        if resolved == _PERF_QUALNAME:
            names.add(local)
    return names
