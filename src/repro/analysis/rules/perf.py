"""PERF001: thread-local attribute access inside loops.

``repro.sim.monitoring.PERF`` is a ``threading.local``-backed facade: an
attribute access costs ~5x a plain increment because it routes through
the per-thread lookup every time.  The hot-path convention (established
when the routing hot path was profiled) is to prebind the per-thread
instance once — ``perf = PERF.counters`` — before the loop and increment
through the plain object inside it.  This rule flags the regression the
prebinding fixed: facade attribute access (read or write) lexically
inside a loop body.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.astutils import dotted_name
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_PERF_QUALNAME = "repro.sim.monitoring.PERF"


@register
class ThreadLocalInLoopRule(Rule):
    """PERF001: ``PERF.x`` (or any thread-local alias) inside a loop."""

    code = "PERF001"
    name = "thread-local-in-loop"
    rationale = (
        "threading.local attribute access pays a per-thread dict lookup "
        "on every operation; in the routing hot loop that measured ~5x a "
        "plain increment.  Prebind the per-thread object once outside the "
        "loop (perf = PERF.counters) and use plain attribute access "
        "inside."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        tracked = _thread_local_names(ctx)
        if not tracked and _PERF_QUALNAME not in ctx.imports.values():
            # Cheap bail-out: nothing resolvable to a thread-local here.
            modules = {v.split(".")[0] for v in ctx.imports.values()}
            if "threading" not in modules and "repro" not in modules:
                return
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, tracked, in_loop=False, out=findings)
        yield from findings

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        tracked: Set[str],
        in_loop: bool,
        out: List[Finding],
    ) -> None:
        if in_loop and isinstance(node, ast.Attribute):
            if self._is_thread_local_base(ctx, node.value, tracked):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"thread-local attribute access "
                        f"{dotted_name(node) or node.attr} inside a loop; "
                        "prebind the per-thread object before the loop "
                        "(e.g. perf = PERF.counters)",
                    )
                )
                return  # don't re-flag the inner chain of a.b.c
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            header = node.iter if isinstance(node, (ast.For, ast.AsyncFor)) else node.test
            self._visit(ctx, header, tracked, in_loop, out)
            for stmt in list(node.body) + list(node.orelse):
                self._visit(ctx, stmt, tracked, in_loop=True, out=out)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A def inside a loop binds, it does not access per-iteration;
            # loops *inside* the nested function are found on recursion.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for stmt in body:
                self._visit(ctx, stmt, tracked, in_loop=False, out=out)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, tracked, in_loop, out)

    def _is_thread_local_base(
        self, ctx: FileContext, value: ast.expr, tracked: Set[str]
    ) -> bool:
        name = dotted_name(value)
        if name is None:
            return False
        if name in tracked:
            return True
        head, _, rest = name.partition(".")
        resolved = ctx.imports.get(head)
        if resolved is None:
            return False
        full = f"{resolved}.{rest}" if rest else resolved
        return full == _PERF_QUALNAME


def _thread_local_names(ctx: FileContext) -> Set[str]:
    """Names bound (anywhere in the file) to a thread-local instance.

    Tracks ``x = threading.local()``, instantiations of classes defined
    in-file that inherit ``threading.local``, and aliases imported as
    ``from repro.sim.monitoring import PERF``.  The ``ThreadLocalPerf``
    facade itself is matched through the import-resolution path.
    """
    local_classes: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = dotted_name(base)
                if base_name and base_name.split(".")[-1] == "local":
                    local_classes.add(node.name)
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        callee = dotted_name(node.value.func)
        if callee is None:
            continue
        if callee.split(".")[-1] == "local" or callee in local_classes:
            names.add(target.id)
    for local, resolved in ctx.imports.items():
        if resolved == _PERF_QUALNAME:
            names.add(local)
    return names
