"""``repro.analysis`` — AST-based determinism & layering linter.

A stdlib-only static-analysis framework purpose-built for this repo's
reproducibility invariants: a rule registry (:mod:`registry`), a
per-file visitor pipeline (:mod:`pipeline`), inline ``# repro: noqa-XXX``
suppressions (:mod:`context`), text/JSON reporters (:mod:`reporters`)
and a grandfathering baseline (:mod:`baseline`), exposed as
``repro lint`` / ``python -m repro lint`` / ``python -m repro.analysis``.

Being stdlib-only is load-bearing twice over: the linter runs before the
scientific stack imports (so it can gate environments where numpy is
missing or broken), and it sits at the bottom of the layering it
enforces — ARCH001 holds this package to the same standard.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext, module_name_for, parse_noqa
from repro.analysis.findings import Finding
from repro.analysis.pipeline import discover_files, lint_file, lint_paths
from repro.analysis.registry import Rule, all_rules, get_rule, register, rule_codes
from repro.analysis.reporters import LintReport, render, render_json, render_text

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "discover_files",
    "get_rule",
    "lint_file",
    "lint_paths",
    "module_name_for",
    "parse_noqa",
    "register",
    "render",
    "render_json",
    "render_text",
    "rule_codes",
]
