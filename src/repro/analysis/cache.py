"""Content-hash result cache for the per-file lint phase.

The cache maps a file's *display path* to the per-file findings computed
for a given (content sha256, rule set) pair, so an unchanged file is
never re-analysed.  Two stamps guard correctness:

- a **schema stamp** (:data:`CACHE_SCHEMA`): a foreign or future schema
  warns to stderr and rebuilds from empty rather than crashing — the
  cache is an accelerator, never a source of truth;
- a **rules signature**: a sha256 over the source of every module in
  ``repro.analysis`` itself, so editing any rule (or the pipeline)
  invalidates the whole cache.

Only the *per-file* phase is cached.  Project-phase findings depend on
every other file in the run, so they are recomputed each time (they are
a small fraction of the work).  Entries not touched by the current run
are evicted on write, which keeps the file bounded by the linted tree.
Writes are atomic (tmp + rename), like the fleet store's index.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

CACHE_SCHEMA = "repro-lint-cache/v1"
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

_rules_signature: Optional[str] = None


def rules_signature() -> str:
    """sha256 over the analysis package's own sources.

    Any edit to a rule, the pipeline, or the project graph changes this
    signature and drops every cached result.  Computed once per process.
    """
    global _rules_signature
    if _rules_signature is None:
        digest = hashlib.sha256()
        package_root = Path(__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            try:
                digest.update(path.read_bytes())
            except OSError:
                digest.update(b"<unreadable>")
            digest.update(b"\0")
        _rules_signature = digest.hexdigest()
    return _rules_signature


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """Per-file lint results keyed by display path + content digest."""

    def __init__(self, path: Path):
        self.path = path
        self.entries: Dict[str, Dict[str, object]] = {}
        self._touched: Set[str] = set()
        self._signature = rules_signature()
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"warning: unreadable lint cache {self.path} ({exc}); rebuilding",
                file=sys.stderr,
            )
            return
        schema = data.get("schema") if isinstance(data, dict) else None
        if schema != CACHE_SCHEMA:
            print(
                f"warning: foreign lint cache schema {schema!r} in {self.path} "
                f"(expected {CACHE_SCHEMA}); rebuilding",
                file=sys.stderr,
            )
            return
        if data.get("rules_signature") != self._signature:
            # The analysis code itself changed; every result is suspect.
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def get(
        self, display_path: str, digest: str, codes: List[str]
    ) -> Optional[Dict[str, object]]:
        """The cached per-file result, or None on any mismatch."""
        entry = self.entries.get(display_path)
        if not isinstance(entry, dict):
            return None
        if entry.get("sha256") != digest or entry.get("codes") != codes:
            return None
        self._touched.add(display_path)
        return entry

    def put(
        self,
        display_path: str,
        digest: str,
        codes: List[str],
        findings: List[Dict[str, object]],
        suppressed: List[Dict[str, object]],
        error: Optional[str],
    ) -> None:
        self.entries[display_path] = {
            "sha256": digest,
            "codes": codes,
            "findings": findings,
            "suppressed": suppressed,
            "error": error,
        }
        self._touched.add(display_path)

    def write(self) -> None:
        """Atomically persist, evicting entries this run never touched."""
        kept = {
            path: self.entries[path]
            for path in sorted(self._touched)
            if path in self.entries
        }
        payload = {
            "schema": CACHE_SCHEMA,
            "rules_signature": self._signature,
            "entries": kept,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            tmp.replace(self.path)
        except OSError as exc:
            print(
                f"warning: could not write lint cache {self.path}: {exc}",
                file=sys.stderr,
            )
