"""Finding model for the ``repro.analysis`` linter.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: the pipeline produces them, the suppression and
baseline layers filter them, and the reporters render them.  The
``fingerprint`` (path, code, message) intentionally excludes the line
number so baseline entries survive unrelated edits that shift code up or
down a file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    Ordering is (path, line, col, code) so reports read in file order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across line-number churn."""
        return (self.path, self.code, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the reporter and baseline)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the result cache)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            code=str(data["code"]),
            message=str(data["message"]),
        )

    def render(self) -> str:
        """``path:line:col: CODE message`` — the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
