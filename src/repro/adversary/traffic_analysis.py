"""Traffic-analysis attacks: predecessor attack and history-profile abuse.

**Predecessor attack** (Wright et al. [26]): colluding malicious
forwarders record their immediate predecessor each time they appear on a
path of a given series.  Over many rounds the true initiator precedes a
corrupt first forwarder more often than any other node (every other node
appears as predecessor only when it happens to be on the path), so the
modal predecessor is the attacker's initiator guess.

**History-profile attack** (§5(3)): the connection identifier stored in
history profiles lets a node that captures *another* node's profile link
path segments of the same series across rounds, reconstructing partial
paths.  :class:`HistoryProfileAttack` measures how much of a series' true
edge set the coalition's pooled history reveals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.history import HistoryProfile
from repro.core.path import Path


@dataclass(frozen=True)
class PredecessorObservation:
    cid: int
    round_index: int
    observer: int
    predecessor: int


@dataclass
class PredecessorAttack:
    """Pooled predecessor logging by a coalition of malicious nodes."""

    coalition: FrozenSet[int]
    observations: List[PredecessorObservation] = field(default_factory=list)

    def ingest_path(self, path: Path) -> int:
        """Record what coalition members on ``path`` observe; returns the
        number of new observations."""
        added = 0
        for predecessor, node_id, _successor in path.hop_records():
            if node_id in self.coalition:
                self.observations.append(
                    PredecessorObservation(
                        cid=path.cid,
                        round_index=path.round_index,
                        observer=node_id,
                        predecessor=predecessor,
                    )
                )
                added += 1
        return added

    def predecessor_counts(self, cid: int) -> Dict[int, int]:
        counts: Counter = Counter()
        for obs in self.observations:
            if obs.cid == cid and obs.predecessor not in self.coalition:
                counts[obs.predecessor] += 1
        return dict(counts)

    def guess_initiator(self, cid: int) -> Optional[int]:
        """Modal non-coalition predecessor for the series (None if no data);
        deterministic tie-break towards the smaller id."""
        counts = self.predecessor_counts(cid)
        if not counts:
            return None
        return min(counts, key=lambda n: (-counts[n], n))

    def confidence(self, cid: int) -> float:
        """Share of observations pointing at the modal predecessor."""
        counts = self.predecessor_counts(cid)
        total = sum(counts.values())
        if total == 0:
            return 0.0
        return max(counts.values()) / total


@dataclass
class HistoryProfileAttack:
    """§5(3): reconstruct per-series path fragments from captured history
    profiles (the cid is the linking key)."""

    captured: List[HistoryProfile] = field(default_factory=list)

    def capture(self, profile: HistoryProfile) -> None:
        self.captured.append(profile)

    def linked_edges(self, cid: int) -> Set[Tuple[int, int]]:
        """All (node, successor) edges of series ``cid`` visible in the
        captured profiles."""
        edges: Set[Tuple[int, int]] = set()
        for profile in self.captured:
            for rec_cid, _pred, succ in profile.observed_edges():
                if rec_cid == cid:
                    edges.add((profile.node_id, succ))
            for rec in profile.records_for(cid):
                edges.add((rec.predecessor, profile.node_id))
        return edges

    def exposure_fraction(self, cid: int, true_paths: Iterable[Path]) -> float:
        """Fraction of the series' true edge set revealed by the pooled
        captured history."""
        true_edges: Set[Tuple[int, int]] = set()
        for p in true_paths:
            true_edges.update(p.edges)
        if not true_edges:
            raise ValueError("series has no edges")
        return len(self.linked_edges(cid) & true_edges) / len(true_edges)
