"""Sybil and whitewashing attacks against the incentive mechanism.

A rational attacker might multiply identities to capture more
forwarding income (each identity can be selected independently, each
earning ``P_f`` per instance plus a share of ``P_r``).  Two structural
properties of the paper's design limit the payoff:

1. **availability must be earned**: the §2.3 estimator starts a new
   neighbour at ``rand(0, T)`` observed session time, so fresh Sybil
   identities have near-zero availability and utility routing rarely
   selects them until they have *actually stayed online* — the cost the
   attacker wanted to avoid paying per identity;
2. **the routing benefit is a fixed pot**: extra identities on a series
   inflate ``||pi||`` and dilute the per-member share, including the
   attacker's own.

Two attack strategies are modelled:

- ``"persist"`` — the classic Sybil colony: identities join once and
  stay online forever, farming availability.
- ``"whitewash"`` — identity churn: the colony periodically retires its
  oldest identity and joins a fresh one, shedding any history (and, in
  systems that grant newcomers a starting balance, collecting the *join
  subsidy* each time).  Because every token beyond the subsidy must be
  earned through settled forwarding work, whitewashing yields no net
  token gain beyond the subsidy — the invariant the property suite
  pins (:mod:`tests.properties.test_attack_invariants`).

:class:`SybilColony` owns the identity lifecycle (spawn / whitewash /
retire with per-identity accounting); :func:`run_sybil_experiment`
measures the colony's income against its pro-rata population share under
a chosen routing strategy, with the Sybils joining *after* the honest
population has probe history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.contracts import Contract, draw_contract
from repro.core.costs import CostModel
from repro.core.history import HistoryProfile
from repro.core.protocol import ConnectionSeries, PathBuilder, TerminationPolicy
from repro.core.routing import strategy_by_name
from repro.network.overlay import Overlay
from repro.network.probing import run_probe_round
from repro.sim.rng import RandomStreams

#: Supported colony strategies.
SYBIL_STRATEGIES = ("persist", "whitewash")


@dataclass
class SybilColony:
    """Identity lifecycle of a Sybil colony.

    The colony holds a rolling set of *active* identities.  ``spawn``
    creates one (overlay node + history profile + optional bank account
    seeded with the join subsidy); ``whitewash`` retires the oldest
    active identity for good and replaces it with a fresh one.  Every
    identity ever used stays in ``all_ids``/``generations`` so the
    per-identity value extraction can be measured after settlement.
    """

    overlay: Overlay
    histories: Dict[int, HistoryProfile]
    bank: Optional[object] = None  # repro.payment.bank.Bank, kept untyped (lazy layer)
    join_subsidy: float = 0.0
    malicious: bool = False
    participation_cost: float = 1.0
    active: List[int] = field(default_factory=list)
    all_ids: List[int] = field(default_factory=list)
    #: identity -> whitewash generation (0 = founding cohort).
    generations: Dict[int, int] = field(default_factory=dict)
    subsidy_collected: float = 0.0
    whitewashes: int = 0

    def __post_init__(self) -> None:
        if self.join_subsidy < 0:
            raise ValueError(f"negative join_subsidy {self.join_subsidy}")

    @property
    def identities_used(self) -> int:
        """Total identities the colony ever burned through."""
        return len(self.all_ids)

    def member_ids(self) -> Set[int]:
        """Every identity ever controlled by the colony."""
        return set(self.all_ids)

    def spawn(self, now: float, generation: int = 0) -> int:
        """Join one fresh identity; returns its node id."""
        node = self.overlay.spawn_node(
            malicious=self.malicious, participation_cost=self.participation_cost
        )
        nid = node.node_id
        self.overlay.join(nid, now)
        self.histories[nid] = HistoryProfile(nid)
        self.active.append(nid)
        self.all_ids.append(nid)
        self.generations[nid] = generation
        if self.bank is not None:
            self.bank.open_account(nid)
            if self.join_subsidy > 0:
                self.bank.ledger.mint(nid, self.join_subsidy)
        self.subsidy_collected += self.join_subsidy
        return nid

    def spawn_cohort(self, count: int, now: float) -> List[int]:
        """Join ``count`` founding identities at once."""
        if count < 1:
            raise ValueError(f"need at least one identity, got {count}")
        return [self.spawn(now, generation=0) for _ in range(count)]

    def retire(self, nid: int, now: float) -> None:
        """Permanently depart one active identity (whitewash discard)."""
        if nid not in self.active:
            raise ValueError(f"{nid} is not an active colony identity")
        self.active.remove(nid)
        node = self.overlay.nodes[nid]
        from repro.network.node import NodeState

        if node.state is not NodeState.DEPARTED:
            self.overlay.depart(nid, now)

    def whitewash(self, now: float) -> Tuple[int, int]:
        """Retire the oldest active identity, join a fresh one.

        Returns ``(retired_id, fresh_id)``.  The fresh identity starts a
        new whitewash generation and collects the join subsidy (if any)
        — the only token gain the manoeuvre can ever produce.
        """
        if not self.active:
            raise ValueError("colony has no active identity to whitewash")
        retired = self.active[0]
        self.retire(retired, now)
        self.whitewashes += 1
        fresh = self.spawn(now, generation=self.whitewashes)
        return retired, fresh


@dataclass(frozen=True)
class SybilResult:
    """Outcome of one Sybil experiment."""

    n_honest: int
    n_sybil: int
    colony_income: float
    honest_income: float
    #: colony income / (income a same-sized honest group would earn
    #: pro-rata).
    amplification: float
    #: Colony strategy that produced this result.
    strategy_mode: str = "persist"
    #: Total identities the colony burned through (== n_sybil unless
    #: whitewashing rotated some).
    identities_used: int = 0
    #: Settlement income per colony identity (identity id -> amount).
    income_by_identity: Dict[int, float] = field(default_factory=dict)
    #: Join subsidies collected across all identities.
    subsidy_collected: float = 0.0
    join_subsidy: float = 0.0
    #: Ledger conservation check (None when the experiment ran bankless).
    bank_audit_ok: Optional[bool] = None
    #: What the initiators paid out in settlements, total.
    initiator_spend: float = 0.0

    @property
    def profitable(self) -> bool:
        """Did identity multiplication beat pro-rata participation?"""
        return self.amplification > 1.0

    @property
    def value_per_identity(self) -> float:
        """Extracted value (income + subsidies) per identity used."""
        if self.identities_used <= 0:
            return 0.0
        return (self.colony_income + self.subsidy_collected) / self.identities_used

    @property
    def net_gain_beyond_subsidy(self) -> float:
        """Colony token gain not explained by join subsidies.  Every unit
        of this was earned through settled forwarding work — identity
        churn itself mints nothing."""
        return self.colony_income


def run_sybil_experiment(
    n_honest: int = 24,
    n_sybil: int = 8,
    strategy: str = "utility-I",
    seed: int = 0,
    n_pairs: int = 10,
    rounds: int = 15,
    warmup_probes: int = 6,
    probe_period: float = 5.0,
    flap_probability: float = 0.15,
    strategy_mode: str = "persist",
    whitewash_every: int = 5,
    join_subsidy: float = 0.0,
    use_bank: bool = False,
) -> SybilResult:
    """Run the workload with a late-joining Sybil colony; measure income.

    The honest overlay bootstraps and accumulates ``warmup_probes``
    probing rounds (so honest availabilities are established); then the
    colony joins.  Between workload rounds honest non-endpoint nodes
    *flap* (go offline/return with probability ``flap_probability``) —
    the churn that frees neighbour slots Sybils can be discovered into.
    Active Sybil identities never flap: staying online is their whole
    strategy.

    ``strategy_mode="whitewash"`` rotates the oldest identity every
    ``whitewash_every`` workload rounds (a fresh identity replaces it and
    collects ``join_subsidy``).  ``use_bank=True`` settles every series
    through the bank escrow and audits the ledger afterwards, making the
    token-conservation invariant checkable under any colony strategy.
    """
    if n_sybil < 1 or n_honest < 4:
        raise ValueError("need n_sybil >= 1 and n_honest >= 4")
    if strategy_mode not in SYBIL_STRATEGIES:
        raise ValueError(
            f"unknown strategy_mode {strategy_mode!r}; expected one of {SYBIL_STRATEGIES}"
        )
    if whitewash_every < 1:
        raise ValueError(f"whitewash_every must be >= 1, got {whitewash_every}")
    streams = RandomStreams(seed)
    overlay = Overlay(rng=streams["overlay"], degree=5)
    overlay.bootstrap(n_honest)

    # Honest warm-up: probes establish availability before Sybils exist.
    now = 0.0
    for _ in range(warmup_probes):
        now += probe_period
        for nid in overlay.online_ids():
            run_probe_round(overlay, nid, probe_period, streams["probe"], now)

    bank = None
    if use_bank:
        from repro.payment.bank import Bank

        bank = Bank(
            rng=streams["bank"],
            denominations=tuple(2**k for k in range(17)),
            key_bits=128,
        )
        for nid in sorted(overlay.nodes):
            bank.open_account(nid)

    histories = {nid: HistoryProfile(nid) for nid in overlay.nodes}
    colony = SybilColony(
        overlay=overlay,
        histories=histories,
        bank=bank,
        join_subsidy=join_subsidy,
    )
    colony.spawn_cohort(n_sybil, now)
    builder = PathBuilder(
        overlay=overlay,
        cost_model=CostModel(),
        histories=histories,
        rng=streams["routing"],
        good_strategy=strategy_by_name(strategy),
        termination=TerminationPolicy.crowds(0.7),
    )
    income: Dict[int, float] = {}
    pair_rng = streams["pairs"]
    churn_rng = streams["flap"]
    founding = colony.member_ids()
    honest_pool = [n for n in overlay.online_ids() if n not in founding]
    all_series = []
    endpoints: Set[int] = set()
    for cid in range(1, n_pairs + 1):
        i, r = pair_rng.choice(honest_pool, size=2, replace=False)
        endpoints.update((int(i), int(r)))
        all_series.append(
            ConnectionSeries(
                cid=cid,
                initiator=int(i),
                responder=int(r),
                contract=draw_contract(streams["contracts"], tau=2.0),
                builder=builder,
            )
        )
    if bank is not None:
        # Initiators carry enough working capital that no settlement can
        # bounce (worst case: every round at the builder's path cap).
        worst_case = (
            rounds * builder.max_path_length * max(s.contract.forwarding_benefit for s in all_series) * 1.1
            + max(s.contract.routing_benefit for s in all_series)
        )
        for nid in sorted(endpoints):
            bank.ledger.mint(nid, worst_case)
    flappable = [n for n in honest_pool if n not in endpoints and n not in founding]
    offline: Set[int] = set()
    for round_no in range(1, rounds + 1):
        # Honest churn: some nodes flap; active Sybils never do.
        for nid in list(flappable):
            if nid in offline:
                overlay.join(nid, now)
                offline.discard(nid)
            elif churn_rng.random() < flap_probability:
                overlay.leave(nid, now)
                offline.add(nid)
        now += probe_period
        for nid in overlay.online_ids():
            run_probe_round(overlay, nid, probe_period, streams["probe"], now)
        for series in all_series:
            series.run_round()
        if strategy_mode == "whitewash" and round_no % whitewash_every == 0:
            colony.whitewash(now)
    for series in all_series:
        payments = series.settlement()
        if bank is not None and payments:
            from repro.payment.escrow import SeriesEscrow

            escrow = SeriesEscrow(
                bank=bank,
                escrow_id=series.cid,
                initiator_account=series.initiator,
                budget=sum(payments.values()),
            )
            escrow.open()
            escrow.settle(
                payments,
                validated_instances=series.log.total_instances(),
                rng=streams["bank"],
            )
        for node, amount in payments.items():
            income[node] = income.get(node, 0.0) + amount

    members = colony.member_ids()
    colony_income = sum(income.get(n, 0.0) for n in sorted(members))
    honest = sum(
        amount for node, amount in income.items() if node not in members
    )
    total = colony_income + honest
    population = n_honest + n_sybil
    pro_rata = total * n_sybil / population
    return SybilResult(
        n_honest=n_honest,
        n_sybil=n_sybil,
        colony_income=colony_income,
        honest_income=honest,
        amplification=colony_income / pro_rata if pro_rata > 0 else 0.0,
        strategy_mode=strategy_mode,
        identities_used=colony.identities_used,
        income_by_identity={
            nid: income.get(nid, 0.0) for nid in sorted(members)
        },
        subsidy_collected=colony.subsidy_collected,
        join_subsidy=join_subsidy,
        bank_audit_ok=(bank.audit() if bank is not None else None),
        initiator_spend=sum(income.values()),
    )
