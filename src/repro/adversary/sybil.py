"""Sybil attack against the incentive mechanism.

A rational attacker might multiply identities to capture more
forwarding income (each identity can be selected independently, each
earning ``P_f`` per instance plus a share of ``P_r``).  Two structural
properties of the paper's design limit the payoff:

1. **availability must be earned**: the §2.3 estimator starts a new
   neighbour at ``rand(0, T)`` observed session time, so fresh Sybil
   identities have near-zero availability and utility routing rarely
   selects them until they have *actually stayed online* — the cost the
   attacker wanted to avoid paying per identity;
2. **the routing benefit is a fixed pot**: extra identities on a series
   inflate ``||pi||`` and dilute the per-member share, including the
   attacker's own.

:func:`run_sybil_experiment` measures the colony's income against its
pro-rata population share under a chosen routing strategy, with the
Sybils joining *after* the honest population has probe history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

import numpy as np

from repro.core.contracts import Contract, draw_contract
from repro.core.costs import CostModel
from repro.core.history import HistoryProfile
from repro.core.protocol import ConnectionSeries, PathBuilder, TerminationPolicy
from repro.core.routing import strategy_by_name
from repro.network.overlay import Overlay
from repro.network.probing import run_probe_round
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class SybilResult:
    """Outcome of one Sybil experiment."""

    n_honest: int
    n_sybil: int
    colony_income: float
    honest_income: float
    #: colony income / (income a same-sized honest group would earn
    #: pro-rata).
    amplification: float

    @property
    def profitable(self) -> bool:
        """Did identity multiplication beat pro-rata participation?"""
        return self.amplification > 1.0


def run_sybil_experiment(
    n_honest: int = 24,
    n_sybil: int = 8,
    strategy: str = "utility-I",
    seed: int = 0,
    n_pairs: int = 10,
    rounds: int = 15,
    warmup_probes: int = 6,
    probe_period: float = 5.0,
    flap_probability: float = 0.15,
) -> SybilResult:
    """Run the workload with a late-joining Sybil colony; measure income.

    The honest overlay bootstraps and accumulates ``warmup_probes``
    probing rounds (so honest availabilities are established); then the
    colony joins.  Between workload rounds honest non-endpoint nodes
    *flap* (go offline/return with probability ``flap_probability``) —
    the churn that frees neighbour slots Sybils can be discovered into.
    Sybil identities never flap: staying online is their whole strategy.
    """
    if n_sybil < 1 or n_honest < 4:
        raise ValueError("need n_sybil >= 1 and n_honest >= 4")
    streams = RandomStreams(seed)
    overlay = Overlay(rng=streams["overlay"], degree=5)
    overlay.bootstrap(n_honest)

    # Honest warm-up: probes establish availability before Sybils exist.
    now = 0.0
    for _ in range(warmup_probes):
        now += probe_period
        for nid in overlay.online_ids():
            run_probe_round(overlay, nid, probe_period, streams["probe"], now)

    sybil_ids: Set[int] = set()
    for _ in range(n_sybil):
        node = overlay.spawn_node()
        overlay.join(node.node_id, now)
        sybil_ids.add(node.node_id)

    histories = {nid: HistoryProfile(nid) for nid in overlay.nodes}
    builder = PathBuilder(
        overlay=overlay,
        cost_model=CostModel(),
        histories=histories,
        rng=streams["routing"],
        good_strategy=strategy_by_name(strategy),
        termination=TerminationPolicy.crowds(0.7),
    )
    income: Dict[int, float] = {}
    pair_rng = streams["pairs"]
    churn_rng = streams["flap"]
    honest_pool = [n for n in overlay.online_ids() if n not in sybil_ids]
    all_series = []
    endpoints: Set[int] = set()
    for cid in range(1, n_pairs + 1):
        i, r = pair_rng.choice(honest_pool, size=2, replace=False)
        endpoints.update((int(i), int(r)))
        all_series.append(
            ConnectionSeries(
                cid=cid,
                initiator=int(i),
                responder=int(r),
                contract=draw_contract(streams["contracts"], tau=2.0),
                builder=builder,
            )
        )
    flappable = [
        n for n in honest_pool if n not in endpoints and n not in sybil_ids
    ]
    offline: Set[int] = set()
    for _ in range(rounds):
        # Honest churn: some nodes flap; Sybils never do.
        for nid in list(flappable):
            if nid in offline:
                overlay.join(nid, now)
                offline.discard(nid)
            elif churn_rng.random() < flap_probability:
                overlay.leave(nid, now)
                offline.add(nid)
        now += probe_period
        for nid in overlay.online_ids():
            run_probe_round(overlay, nid, probe_period, streams["probe"], now)
        for series in all_series:
            series.run_round()
    for series in all_series:
        for node, amount in series.settlement().items():
            income[node] = income.get(node, 0.0) + amount

    colony = sum(income.get(n, 0.0) for n in sybil_ids)
    honest = sum(
        amount for node, amount in income.items() if node not in sybil_ids
    )
    total = colony + honest
    population = n_honest + n_sybil
    pro_rata = total * n_sybil / population
    return SybilResult(
        n_honest=n_honest,
        n_sybil=n_sybil,
        colony_income=colony,
        honest_income=honest,
        amplification=colony / pro_rata if pro_rata > 0 else 0.0,
    )
