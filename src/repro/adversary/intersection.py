"""The intersection attack (§2.1, Wright et al. [27]).

An observer who can tell *when* a recurring connection between I and R is
active (e.g. by watching R) intersects the sets of online nodes at those
instants: the initiator must have been online every time, so the candidate
set shrinks with every observation.  Churn accelerates the attack — the
more the online population turns over between rounds, the faster the
intersection collapses to {I}.

The paper's defence is indirect: the incentive mechanism keeps the
forwarder set (and the underlying availability) stable, reducing both the
number of path reformations and the information each reformation leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence

from repro.network.trace import NetworkTrace
from repro.core.utility import entropy_anonymity_degree


@dataclass(frozen=True)
class IntersectionResult:
    """Outcome of an intersection attack against one connection series."""

    initiator: int
    observations: int
    #: Candidate-set size after each successive intersection.
    candidate_sizes: List[int]
    final_candidates: FrozenSet[int]

    @property
    def exposed(self) -> bool:
        """True when the initiator is uniquely identified."""
        return self.final_candidates == frozenset({self.initiator})

    @property
    def anonymity_degree(self) -> float:
        """Normalised entropy of a uniform distribution over the final
        candidate set, relative to the initial population of candidates.

        1.0 = no information gained, 0.0 = fully identified.
        """
        n0 = self.candidate_sizes[0] if self.candidate_sizes else 1
        nf = len(self.final_candidates)
        if n0 <= 1:
            return 0.0
        if nf <= 1:
            return 0.0
        return entropy_anonymity_degree([1.0 / nf] * nf) * (
            _log(nf) / _log(n0)
        )


def _log(x: int) -> float:
    import math

    return math.log2(x) if x > 1 else 1.0


@dataclass
class IntersectionAttack:
    """Attacker state: successive online-set observations for one series."""

    trace: NetworkTrace
    initiator: int
    #: The attacker may already exclude some ids (e.g. the responder, known
    #: malicious colluders).
    excluded: FrozenSet[int] = frozenset()
    _candidates: Optional[set] = field(default=None, repr=False)
    _sizes: List[int] = field(default_factory=list, repr=False)
    _observations: int = 0

    def observe(self, time: float) -> int:
        """Record one activity observation at ``time``; returns the current
        candidate-set size."""
        online = set(self.trace.online_at(time)) - set(self.excluded)
        if self._candidates is None:
            self._candidates = online
        else:
            self._candidates &= online
        self._observations += 1
        self._sizes.append(len(self._candidates))
        return len(self._candidates)

    def observe_rounds(self, times: Sequence[float]) -> "IntersectionResult":
        for t in times:
            self.observe(t)
        return self.result()

    def result(self) -> IntersectionResult:
        if self._candidates is None:
            raise RuntimeError("no observations made yet")
        return IntersectionResult(
            initiator=self.initiator,
            observations=self._observations,
            candidate_sizes=list(self._sizes),
            final_candidates=frozenset(self._candidates),
        )
