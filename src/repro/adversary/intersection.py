"""The intersection attack (§2.1, Wright et al. [27]).

An observer who can tell *when* a recurring connection between I and R is
active (e.g. by watching R) intersects the sets of online nodes at those
instants: the initiator must have been online every time, so the candidate
set shrinks with every observation.  Churn accelerates the attack — the
more the online population turns over between rounds, the faster the
intersection collapses to {I}.

The paper's defence is indirect: the incentive mechanism keeps the
forwarder set (and the underlying availability) stable, reducing both the
number of path reformations and the information each reformation leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.path import Path
from repro.network.trace import NetworkTrace
from repro.core.utility import entropy_anonymity_degree


@dataclass(frozen=True)
class IntersectionResult:
    """Outcome of an intersection attack against one connection series."""

    initiator: int
    observations: int
    #: Candidate-set size after each successive intersection.
    candidate_sizes: List[int]
    final_candidates: FrozenSet[int]

    @property
    def exposed(self) -> bool:
        """True when the initiator is uniquely identified."""
        return self.final_candidates == frozenset({self.initiator})

    @property
    def anonymity_degree(self) -> float:
        """Normalised entropy of a uniform distribution over the final
        candidate set, relative to the initial population of candidates.

        1.0 = no information gained, 0.0 = fully identified.
        """
        n0 = self.candidate_sizes[0] if self.candidate_sizes else 1
        nf = len(self.final_candidates)
        if n0 <= 1:
            return 0.0
        if nf <= 1:
            return 0.0
        return entropy_anonymity_degree([1.0 / nf] * nf) * (
            _log(nf) / _log(n0)
        )


def _log(x: int) -> float:
    import math

    return math.log2(x) if x > 1 else 1.0


@dataclass
class IntersectionAttack:
    """Attacker state: successive online-set observations for one series."""

    trace: NetworkTrace
    initiator: int
    #: The attacker may already exclude some ids (e.g. the responder, known
    #: malicious colluders).
    excluded: FrozenSet[int] = frozenset()
    _candidates: Optional[set] = field(default=None, repr=False)
    _sizes: List[int] = field(default_factory=list, repr=False)
    _observations: int = 0

    def observe(self, time: float) -> int:
        """Record one activity observation at ``time``; returns the current
        candidate-set size."""
        online = set(self.trace.online_at(time)) - set(self.excluded)
        if self._candidates is None:
            self._candidates = online
        else:
            self._candidates &= online
        self._observations += 1
        self._sizes.append(len(self._candidates))
        return len(self._candidates)

    def observe_rounds(self, times: Sequence[float]) -> "IntersectionResult":
        for t in times:
            self.observe(t)
        return self.result()

    def result(self) -> IntersectionResult:
        if self._candidates is None:
            raise RuntimeError("no observations made yet")
        return IntersectionResult(
            initiator=self.initiator,
            observations=self._observations,
            candidate_sizes=list(self._sizes),
            final_candidates=frozenset(self._candidates),
        )


@dataclass
class CoalitionObserver:
    """A coalition of compromised forwarders pooling intersection data.

    The single-observer attack above assumes someone watches the
    responder for the *whole* series.  The coalition model is weaker per
    member but stronger in aggregate: a malicious forwarder only learns
    that series ``cid`` was active when it sits on (or terminates) that
    round's path, so each member observes a subset of the rounds.  The
    coalition pools those per-round observations — the union of observed
    round times per series — and runs the §2.1 intersection over the
    pooled set.

    Monotonicity is structural: a larger coalition observes a superset
    of round times, and intersecting over more online-set snapshots can
    only shrink (never grow) the candidate set.  The property suite pins
    this (`tests/properties/test_attack_invariants.py`).
    """

    trace: NetworkTrace
    members: FrozenSet[int] = frozenset()
    #: Pooled observation times per series (cid -> sorted unique times).
    _times: Dict[int, List[float]] = field(default_factory=dict, repr=False)

    def observe_path(
        self, path: Path, time: float, series_cid: Optional[int] = None
    ) -> bool:
        """Ingest one committed round.  The coalition learns the series
        was active at ``time`` iff a member forwarded on (or received)
        the round's path.  Returns True when the round was observed.

        ``series_cid`` overrides the cid the observation is pooled under
        (wire cids rotate under the cid-rotation defence; the attack
        still targets the underlying series)."""
        if not self.members:
            return False
        visible = set(path.forwarders)
        visible.add(path.responder)
        if not (visible & self.members):
            return False
        self.record_observation(
            path.cid if series_cid is None else series_cid, time
        )
        return True

    def record_observation(self, cid: int, time: float) -> None:
        """Pool one raw activity observation for series ``cid``."""
        times = self._times.setdefault(cid, [])
        if time not in times:
            times.append(time)
            times.sort()

    def merge(self, other: "CoalitionObserver") -> None:
        """Pool another coalition's observations into this one (the
        round-merging step: candidate sets are intersected lazily when
        :meth:`attack` replays the pooled times)."""
        self.members = self.members | other.members
        for cid, times in other._times.items():
            mine = self._times.setdefault(cid, [])
            merged = sorted(set(mine) | set(times))
            self._times[cid] = merged

    def observed_series(self) -> List[int]:
        """Series ids with at least one pooled observation, sorted."""
        return sorted(cid for cid, ts in self._times.items() if ts)

    def observed_times(self, cid: int) -> List[float]:
        """Pooled observation times for one series (empty if unobserved)."""
        return list(self._times.get(cid, ()))

    def attack(
        self,
        cid: int,
        initiator: int,
        excluded: FrozenSet[int] = frozenset(),
    ) -> Optional[IntersectionResult]:
        """Run the pooled intersection against one series.

        Returns None when the coalition never observed the series (an
        *empty round set* gives the attacker nothing — the candidate set
        is the whole population and no IntersectionResult exists).
        """
        times = self._times.get(cid)
        if not times:
            return None
        attack = IntersectionAttack(
            trace=self.trace, initiator=initiator, excluded=excluded
        )
        return attack.observe_rounds(times)


def coalition_of(member_ids: Iterable[int], trace: NetworkTrace) -> CoalitionObserver:
    """Convenience constructor from any iterable of member ids."""
    return CoalitionObserver(trace=trace, members=frozenset(member_ids))


def pooled_intersection_attack(
    trace: NetworkTrace,
    members: Iterable[int],
    rounds: Iterable[Tuple[Path, float]],
    initiator: int,
    cid: int,
    excluded: FrozenSet[int] = frozenset(),
) -> Optional[IntersectionResult]:
    """One-shot helper: build a coalition, feed it ``(path, time)`` rounds
    and run the pooled attack against series ``cid``."""
    observer = coalition_of(members, trace)
    for path, time in rounds:
        observer.observe_path(path, time)
    return observer.attack(cid, initiator, excluded=excluded)
