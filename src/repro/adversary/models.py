"""Adversarial node behaviours.

The baseline adversary in the paper routes randomly (its goal is
de-anonymisation, not income) — that behaviour lives in
:class:`repro.core.routing.RandomRouting` and is wired up by the path
builder's ``adversary_strategy``.

This module adds the §5(1) **availability attack**: "malicious nodes
become highly available and wait for paths to be reformed through them."
An availability attacker never churns (it stays online for the whole
simulation), so the probing estimator assigns it ever-growing session
time, and availability-weighted routing increasingly prefers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.network.overlay import Overlay


@dataclass
class AvailabilityAttacker:
    """Marker/controller for an always-on malicious node.

    The attack needs no active behaviour beyond *not leaving*: the node is
    flagged malicious (so it routes randomly when chosen) and is excluded
    from churn by the scenario runner.  ``times_selected`` is filled in by
    the analysis to quantify the attack's success.
    """

    node_id: int
    times_selected: int = 0

    def record_selection(self) -> None:
        self.times_selected += 1


def make_availability_attackers(
    overlay: Overlay, count: int, rng: np.random.Generator
) -> List[AvailabilityAttacker]:
    """Convert ``count`` random online good nodes into availability
    attackers (flag them malicious; the scenario keeps them out of churn)."""
    candidates = [
        nid for nid in overlay.online_ids() if not overlay.nodes[nid].malicious
    ]
    if count > len(candidates):
        raise ValueError(
            f"cannot create {count} attackers from {len(candidates)} good nodes"
        )
    picked = rng.choice(candidates, size=count, replace=False)
    attackers = []
    for nid in picked:
        overlay.nodes[int(nid)].malicious = True
        attackers.append(AvailabilityAttacker(node_id=int(nid)))
    return attackers


def attacker_selection_rate(
    attackers: Sequence[AvailabilityAttacker], total_forwarder_slots: int
) -> float:
    """Fraction of forwarder slots captured by availability attackers."""
    if total_forwarder_slots <= 0:
        raise ValueError("total_forwarder_slots must be positive")
    return sum(a.times_selected for a in attackers) / total_forwarder_slots
