"""Adversary models and anonymity attacks (§2.1, §2.4, §5).

- :mod:`~repro.adversary.models` — the paper's adversary (random routing,
  §2.4) plus the §5 *availability attacker* (a malicious node that makes
  itself maximally available to attract reformed paths).
- :mod:`~repro.adversary.intersection` — the intersection attack of §2.1:
  intersect the sets of online nodes observed across the rounds of a
  recurring connection; the initiator is exposed when the candidate set
  collapses.
- :mod:`~repro.adversary.traffic_analysis` — the predecessor attack:
  colluding malicious forwarders log their immediate predecessor per
  series; the most frequent predecessor is the initiator guess.
  Also models the §5(3) attack through connection identifiers in
  captured history profiles.
"""

from repro.adversary.intersection import IntersectionAttack, IntersectionResult
from repro.adversary.models import AvailabilityAttacker, make_availability_attackers
from repro.adversary.sybil import SybilResult, run_sybil_experiment
from repro.adversary.traffic_analysis import (
    HistoryProfileAttack,
    PredecessorAttack,
    PredecessorObservation,
)

__all__ = [
    "AvailabilityAttacker",
    "HistoryProfileAttack",
    "IntersectionAttack",
    "IntersectionResult",
    "PredecessorAttack",
    "PredecessorObservation",
    "SybilResult",
    "make_availability_attackers",
    "run_sybil_experiment",
]
