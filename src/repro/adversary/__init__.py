"""Adversary models and anonymity attacks (§2.1, §2.4, §5).

- :mod:`~repro.adversary.models` — the paper's adversary (random routing,
  §2.4) plus the §5 *availability attacker* (a malicious node that makes
  itself maximally available to attract reformed paths).
- :mod:`~repro.adversary.intersection` — the intersection attack of §2.1:
  intersect the sets of online nodes observed across the rounds of a
  recurring connection; the initiator is exposed when the candidate set
  collapses.  :class:`~repro.adversary.intersection.CoalitionObserver`
  extends it to coalitions of compromised forwarders pooling per-round
  observations.
- :mod:`~repro.adversary.sybil` — Sybil colonies and whitewashing
  identity churn attacking the token economy
  (:class:`~repro.adversary.sybil.SybilColony` lifecycle).
- :mod:`~repro.adversary.traffic_analysis` — the predecessor attack:
  colluding malicious forwarders log their immediate predecessor per
  series; the most frequent predecessor is the initiator guess.
  Also models the §5(3) attack through connection identifiers in
  captured history profiles.
"""

from repro.adversary.intersection import (
    CoalitionObserver,
    IntersectionAttack,
    IntersectionResult,
    coalition_of,
    pooled_intersection_attack,
)
from repro.adversary.models import AvailabilityAttacker, make_availability_attackers
from repro.adversary.sybil import (
    SYBIL_STRATEGIES,
    SybilColony,
    SybilResult,
    run_sybil_experiment,
)
from repro.adversary.traffic_analysis import (
    HistoryProfileAttack,
    PredecessorAttack,
    PredecessorObservation,
)

__all__ = [
    "AvailabilityAttacker",
    "CoalitionObserver",
    "HistoryProfileAttack",
    "IntersectionAttack",
    "IntersectionResult",
    "PredecessorAttack",
    "PredecessorObservation",
    "SYBIL_STRATEGIES",
    "SybilColony",
    "SybilResult",
    "coalition_of",
    "make_availability_attackers",
    "pooled_intersection_attack",
    "run_sybil_experiment",
]
