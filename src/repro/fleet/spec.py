"""Sweep specification and the deterministic, content-addressed job list.

A :class:`SweepSpec` describes a parameter sweep declaratively: a base
config, per-field value grids (``axes``), and the cross-cutting
dimensions every sweep has (seeds, scoring backends, fault severities,
scenario families).  :meth:`SweepSpec.expand` takes the cartesian
product in a fixed order and resolves every point into a full
:class:`~repro.experiments.config.ExperimentConfig`.

Job identity is *content-addressed*: :func:`job_id_for` hashes the
canonical JSON of the fully resolved config (every field, including the
defaults the spec never mentioned) plus the code-relevant environment.
Two consequences the fleet runner relies on:

- the id is independent of axis declaration order, axis value order,
  and ``PYTHONHASHSEED`` (canonical JSON sorts keys; nothing iterates a
  set) — pinned by ``tests/properties/test_fleet_determinism.py``;
- re-running a spec after an interrupt, or after an edit that does not
  change any resolved config (a comment, a doc tweak), produces the
  same ids, so completed jobs are skipped instead of re-executed.

Specs load from Python dicts, JSON files, or TOML files (TOML needs the
stdlib ``tomllib``, Python 3.11+; JSON works everywhere).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import (
    CapacityConfig,
    ChurnConfig,
    ExperimentConfig,
    FaultConfig,
    PricingConfig,
    SybilConfig,
)
from repro.obs import ObsConfig

#: Stamp hashed into every job id; bump to invalidate all stored jobs
#: after a semantics-changing schema revision.
JOB_SCHEMA = "repro-fleet/job-v1"

#: Scenario families: named config-override bundles for the adversarial
#: & economic suite, usable as a sweep dimension (``families = [...]``).
FAMILY_OVERRIDES: Dict[str, Dict[str, object]] = {
    "baseline": {},
    "sybil": {"sybil": {}},
    "pricing": {"pricing": {}},
    "capacity": {"capacity": {}},
}

#: Nested config dataclasses reachable from ExperimentConfig fields.
_NESTED_CONFIGS = {
    "churn": ChurnConfig,
    "faults": FaultConfig,
    "obs": ObsConfig,
    "pricing": PricingConfig,
    "capacity": CapacityConfig,
    "sybil": SybilConfig,
}

#: Tuple-typed fields flattened to lists by JSON, per dataclass.
_TUPLE_FIELDS = {
    ExperimentConfig: ("pf_range",),
    FaultConfig: ("bank_outages",),
    CapacityConfig: ("classes",),
}


def config_to_dict(config: ExperimentConfig) -> Dict[str, object]:
    """The fully resolved config as a canonical JSON-safe dict.

    Every field is present (defaults included), nested configs are
    plain dicts, and tuples become lists — the form both the job hash
    and the store's result records use.
    """
    return json.loads(json.dumps(asdict(config)))


def _nested_from_dict(cls, value: Mapping[str, object]):
    fields = dict(value)
    for name in _TUPLE_FIELDS.get(cls, ()):
        if name in fields and fields[name] is not None:
            fields[name] = tuple(
                tuple(item) if isinstance(item, list) else item
                for item in fields[name]
            )
    return cls(**fields)


def config_from_dict(data: Mapping[str, object]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict`
    output (or any partial override dict in the same shape)."""
    fields = dict(data)
    for name, cls in _NESTED_CONFIGS.items():
        value = fields.get(name)
        if isinstance(value, Mapping):
            fields[name] = _nested_from_dict(cls, value)
    for name in _TUPLE_FIELDS[ExperimentConfig]:
        if name in fields and isinstance(fields[name], list):
            fields[name] = tuple(fields[name])
    return ExperimentConfig(**fields)


def code_relevant_env() -> Dict[str, str]:
    """Environment facts that change results and are not already fields
    of the resolved config.

    Currently empty by construction: the one result-relevant variable,
    ``REPRO_BACKEND``, is resolved into ``config.backend`` at expansion
    time, precisely so the job id does not depend on ambient state at
    *run* time.  The hook stays so future knobs have one obvious home.
    """
    return {}


def job_id_for(
    config: ExperimentConfig, env: Optional[Mapping[str, str]] = None
) -> str:
    """Content-addressed job id: hash of resolved config + environment."""
    payload = {
        "schema": JOB_SCHEMA,
        "config": config_to_dict(config),
        "env": dict(env if env is not None else code_relevant_env()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class FleetJob:
    """One resolved sweep point: the unit the executor schedules."""

    job_id: str
    config: ExperimentConfig
    #: The sweep coordinates that produced this job (axis values plus
    #: family / fault_severity / backend / seed) — stored alongside the
    #: result so queries can group by sweep dimension directly.
    axes: Mapping[str, object]
    spec_name: str = ""

    def payload(self) -> Dict[str, object]:
        """JSON-safe form shipped to pool workers and into the store."""
        return {
            "job_id": self.job_id,
            "spec": self.spec_name,
            "axes": dict(self.axes),
            "config": config_to_dict(self.config),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FleetJob":
        return cls(
            job_id=str(payload["job_id"]),
            config=config_from_dict(payload["config"]),
            axes=dict(payload.get("axes", {})),
            spec_name=str(payload.get("spec", "")),
        )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative sweep: base config × axes × cross-cutting dimensions."""

    name: str = "sweep"
    #: ExperimentConfig field overrides applied to every job.
    base: Mapping[str, object] = field(default_factory=dict)
    #: Per-field value grids; expanded in sorted-field order so the job
    #: *list* order is a function of content, not declaration order.
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    #: Scoring backends; None entries resolve the process default.
    backends: Sequence[Optional[str]] = (None,)
    #: ``FaultConfig.from_severity`` knobs; 0.0 = no fault plan.
    fault_severities: Sequence[float] = (0.0,)
    #: Scenario families (:data:`FAMILY_OVERRIDES` keys).
    families: Sequence[str] = ("baseline",)

    def __post_init__(self):
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        unknown = [f for f in self.families if f not in FAMILY_OVERRIDES]
        if unknown:
            raise ValueError(
                f"unknown families {unknown}; expected one of "
                f"{sorted(FAMILY_OVERRIDES)}"
            )

    @property
    def n_jobs(self) -> int:
        n = len(self.seeds) * len(self.backends)
        n *= len(self.fault_severities) * len(self.families)
        for values in self.axes.values():
            n *= len(values)
        return n

    def expand(self) -> List[FleetJob]:
        """The deterministic job list (sorted axis names, given value
        order, then family × severity × backend × seed innermost)."""
        from repro.core.kernels import default_backend

        axis_names = sorted(self.axes)
        axis_grids = [list(self.axes[name]) for name in axis_names]
        jobs: List[FleetJob] = []
        seen: Dict[str, Dict[str, object]] = {}
        for combo in product(
            product(*axis_grids) if axis_grids else [()],
            self.families,
            self.fault_severities,
            self.backends,
            self.seeds,
        ):
            axis_values, family, severity, backend, seed = combo
            resolved_backend = (
                default_backend() if backend is None else str(backend)
            )
            overrides: Dict[str, object] = dict(self.base)
            overrides.update(zip(axis_names, axis_values))
            for key, value in FAMILY_OVERRIDES[family].items():
                overrides.setdefault(key, value)
            if severity:
                overrides["faults"] = asdict(
                    FaultConfig.from_severity(float(severity))
                )
            overrides["backend"] = resolved_backend
            overrides["seed"] = int(seed)
            config = config_from_dict(overrides)
            axes = dict(zip(axis_names, axis_values))
            axes.update(
                family=family,
                fault_severity=float(severity),
                backend=resolved_backend,
                seed=int(seed),
            )
            job_id = job_id_for(config)
            if job_id in seen:
                raise ValueError(
                    f"spec {self.name!r} produces duplicate job {job_id} "
                    f"(coordinates {axes} and {seen[job_id]} resolve to "
                    "the same config)"
                )
            seen[job_id] = axes
            jobs.append(
                FleetJob(
                    job_id=job_id,
                    config=config,
                    axes=axes,
                    spec_name=self.name,
                )
            )
        return jobs

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        known = {
            "name", "base", "axes", "seeds", "backends",
            "fault_severities", "families",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown spec fields {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        fields = dict(data)
        for key in ("seeds", "backends", "fault_severities", "families"):
            if key in fields:
                fields[key] = tuple(fields[key])
        if "axes" in fields:
            fields["axes"] = {
                name: tuple(values) for name, values in fields["axes"].items()
            }
        return cls(**fields)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seeds": list(self.seeds),
            "backends": list(self.backends),
            "fault_severities": list(self.fault_severities),
            "families": list(self.families),
        }


def load_spec(path) -> SweepSpec:
    """Load a spec from a ``.json`` or ``.toml`` file."""
    p = Path(path)
    if p.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 fallback advice
            raise RuntimeError(
                "TOML specs need Python 3.11+ (stdlib tomllib); "
                "use the JSON form of the spec on this interpreter"
            ) from None
        data = tomllib.loads(p.read_text())
    else:
        data = json.loads(p.read_text())
    spec = SweepSpec.from_dict(data)
    if spec.name == "sweep" and "name" not in data:
        spec = SweepSpec.from_dict({**data, "name": p.stem})
    return spec
