"""Fleet runner: resumable sweep orchestration over the obs layer.

The paper's figures are all *sweeps* — payoff curves, forwarder-set
sizes, anonymity CDFs across parameter grids.  This package turns those
multi-config runs from ad-hoc shell loops into durable, queryable
observability data:

- :mod:`repro.fleet.spec` — :class:`SweepSpec` expands parameter grids
  (config knobs × seeds × backends × fault severities × scenario
  families) into a deterministic, content-addressed job list.  A job's
  id is the hash of its fully resolved :class:`ExperimentConfig` plus
  code-relevant environment, so re-running a spec after an interrupt —
  or after a code-irrelevant edit — skips completed jobs.
- :mod:`repro.fleet.store` — :class:`FleetStore`, an append-only JSONL
  event log + results log with a compact rebuilt index
  (``repro-fleet/store-v1``), a filter/group/aggregate query API, and
  ingestion of ``BENCH_routing.json`` benchmark trajectories.
- :mod:`repro.fleet.executor` — ``REPRO_JOBS``-aware process-pool
  scheduling with per-job heartbeats, capped retry on worker crash, and
  graceful SIGINT draining that marks in-flight jobs resumable.
- :mod:`repro.fleet.dash` — a stdlib-only ANSI dashboard tailing the
  store (``repro fleet dash``).
- :mod:`repro.fleet.serve` — a single-threaded ``http.server`` endpoint
  exposing the aggregated metrics registry in Prometheus text format
  (``repro fleet serve``).

Layering: ``repro.fleet`` sits *above* the experiment harness — it may
import ``repro.experiments`` and ``repro.obs``, and nothing below it
may import ``repro.fleet`` at module scope (enforced by ARCH001).
"""

from __future__ import annotations

from repro.fleet.executor import FleetRunOutcome, run_fleet
from repro.fleet.spec import FleetJob, SweepSpec, job_id_for, load_spec
from repro.fleet.store import STORE_SCHEMA, FleetStore

__all__ = [
    "FleetJob",
    "FleetRunOutcome",
    "FleetStore",
    "STORE_SCHEMA",
    "SweepSpec",
    "job_id_for",
    "load_spec",
    "run_fleet",
]
