"""``repro fleet ...`` subcommands.

- ``run SPEC --store DIR`` — execute (or resume) a sweep spec;
- ``show STORE`` — job-state summary and per-spec progress;
- ``query STORE`` — filter/group/aggregate the results store;
- ``export STORE`` — dump result records as JSONL or CSV;
- ``ingest STORE BENCH.json`` — fold a benchmark trajectory/compact
  report into the store as ``bench`` records;
- ``dash STORE`` — live ANSI dashboard (``--once`` for one frame);
- ``serve STORE --prometheus`` — single-threaded ``/metrics`` endpoint.

Exit codes: 0 success, 1 any job failed, 3 interrupted/incomplete
(resumable — run again with the same spec and store to continue).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Mapping, Optional

EXIT_OK = 0
EXIT_FAILED_JOBS = 1
EXIT_INTERRUPTED = 3


def add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the fleet subcommand tree to ``parser``."""
    sub = parser.add_subparsers(dest="fleet_command", required=True)

    run_p = sub.add_parser("run", help="execute (or resume) a sweep spec")
    run_p.add_argument("spec", help="sweep spec file (.json or .toml)")
    run_p.add_argument("--store", required=True, metavar="DIR",
                       help="results store directory (created if missing)")
    run_p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: $REPRO_JOBS or 1)")
    run_p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                       help="stop after completing N jobs this invocation "
                            "(remaining jobs are marked resumable)")
    run_p.add_argument("--heartbeat", type=float, default=5.0, metavar="S",
                       help="seconds between per-job heartbeat events")

    show_p = sub.add_parser("show", help="summarise a results store")
    show_p.add_argument("store")

    query_p = sub.add_parser("query", help="filter/group/aggregate results")
    query_p.add_argument("store")
    query_p.add_argument("--where", action="append", default=[],
                         metavar="PATH=VALUE",
                         help="dotted-path filter, e.g. config.tau=2.0 "
                              "(repeatable; values parsed as JSON when "
                              "possible)")
    query_p.add_argument("--group-by", action="append", default=[],
                         metavar="PATH",
                         help="dotted grouping path, e.g. axes.strategy "
                              "(repeatable)")
    query_p.add_argument("--select", default="metrics.pi_mean", metavar="PATH",
                         help="numeric field to aggregate "
                              "(default: metrics.pi_mean)")
    query_p.add_argument("--agg",
                         choices=("mean", "sum", "min", "max", "count"),
                         default="mean")
    query_p.add_argument("--kind", default="scenario",
                         help="record kind to query: scenario, bench, or "
                              "'any' (default: scenario)")
    query_p.add_argument("--format", choices=("table", "json"),
                         default="table")

    export_p = sub.add_parser("export", help="dump result records")
    export_p.add_argument("store")
    export_p.add_argument("--out", "-o", default=None, metavar="PATH",
                          help="output path (default: stdout)")
    export_p.add_argument("--format", choices=("jsonl", "csv"),
                          default="jsonl")

    ingest_p = sub.add_parser(
        "ingest", help="ingest a benchmark trajectory/compact report"
    )
    ingest_p.add_argument("store")
    ingest_p.add_argument("bench", help="BENCH_routing.json or a compact report")

    dash_p = sub.add_parser("dash", help="live terminal dashboard")
    dash_p.add_argument("store")
    dash_p.add_argument("--interval", type=float, default=1.0, metavar="S")
    dash_p.add_argument("--once", action="store_true",
                        help="render one frame to stdout and exit")

    serve_p = sub.add_parser("serve", help="serve aggregated metrics over HTTP")
    serve_p.add_argument("store")
    serve_p.add_argument("--prometheus", action="store_true",
                         help="text exposition format at /metrics (the only "
                              "format; the flag documents intent)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=9464)


def _parse_where(clauses: List[str]) -> Mapping[str, object]:
    where = {}
    for clause in clauses:
        if "=" not in clause:
            raise SystemExit(f"--where expects PATH=VALUE, got {clause!r}")
        path, raw = clause.split("=", 1)
        try:
            where[path] = json.loads(raw)
        except json.JSONDecodeError:
            where[path] = raw
    return where


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.fleet.executor import run_fleet
    from repro.fleet.spec import load_spec
    from repro.fleet.store import FleetStore

    spec = load_spec(args.spec)
    store = FleetStore(args.store)
    outcome = run_fleet(
        spec,
        store,
        n_jobs=args.jobs,
        max_jobs=args.max_jobs,
        heartbeat=args.heartbeat,
        progress=print,
    )
    if outcome.failed:
        return EXIT_FAILED_JOBS
    if outcome.interrupted or not outcome.converged:
        return EXIT_INTERRUPTED
    return EXIT_OK


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.fleet.dash import render_dashboard
    from repro.fleet.store import FleetStore

    store = FleetStore(args.store, create=False)
    print(render_dashboard(store))
    store.write_index()
    return EXIT_OK


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.fleet.store import FleetStore

    store = FleetStore(args.store, create=False)
    rows = store.query(
        where=_parse_where(args.where),
        group_by=args.group_by,
        select=args.select,
        agg=args.agg,
        kind=None if args.kind == "any" else args.kind,
    )
    if args.format == "json":
        print(json.dumps(rows, indent=2, sort_keys=True))
        return EXIT_OK
    if not rows:
        print("(no matching results)")
        return EXIT_OK
    headers = list(rows[0])
    widths = [
        max(len(h), *(len(_cell(r.get(h))) for r in rows)) for h in headers
    ]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  ".join(
                _cell(row.get(h)).ljust(w) for h, w in zip(headers, widths)
            )
        )
    return EXIT_OK


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.fleet.store import FleetStore

    store = FleetStore(args.store, create=False)
    records = [
        store.results[job_id] for job_id in sorted(store.results)
    ]
    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    try:
        if args.format == "jsonl":
            for record in records:
                out.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            writer = csv.writer(out)
            writer.writerow(
                ["job_id", "kind", "spec", "axes", "metric", "value"]
            )
            for record in records:
                for name, value in sorted(
                    (record.get("metrics") or {}).items()
                ):
                    writer.writerow(
                        [
                            record.get("job_id"),
                            record.get("kind"),
                            record.get("spec", ""),
                            json.dumps(record.get("axes", {}), sort_keys=True),
                            name,
                            value,
                        ]
                    )
    finally:
        if args.out:
            out.close()
    if args.out:
        print(f"{len(records)} records exported to {args.out}")
    return EXIT_OK


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.fleet.store import FleetStore

    store = FleetStore(args.store)
    appended = store.ingest_bench(args.bench)
    store.write_index()
    print(f"ingested {appended} bench records from {args.bench}")
    return EXIT_OK


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.fleet.dash import run_dashboard

    return run_dashboard(args.store, interval=args.interval, once=args.once)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.fleet.serve import serve_store

    return serve_store(args.store, host=args.host, port=args.port)


_HANDLERS = {
    "run": _cmd_run,
    "show": _cmd_show,
    "query": _cmd_query,
    "export": _cmd_export,
    "ingest": _cmd_ingest,
    "dash": _cmd_dash,
    "serve": _cmd_serve,
}


def run(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro fleet`` invocation."""
    try:
        return _HANDLERS[args.fleet_command](args)
    except BrokenPipeError:
        # stdout consumer went away (e.g. `repro fleet export | head`);
        # detach so the interpreter's exit flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.fleet.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro fleet", description=__doc__.splitlines()[0]
    )
    add_fleet_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
