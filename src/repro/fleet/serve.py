"""Prometheus endpoint over a fleet store (``repro fleet serve``).

:func:`build_fleet_registry` aggregates the store into one
:class:`~repro.obs.MetricsRegistry` — job states, attempt counts,
degradation counters, deterministic scenario metrics, and wall-time
histograms — and :func:`serve_store` exposes it at ``/metrics`` in
Prometheus text exposition format via a single-threaded stdlib
``http.server``.  Every scrape re-replays the store, so a scraper
pointed at a live sweep sees it progress; the registry built here
round-trips through :func:`repro.obs.parse_prometheus` (tested), so a
scrape archive can be folded back into structured form later.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional, Tuple

from repro.fleet.store import JOB_STATES, FleetStore
from repro.obs import MetricsRegistry


def build_fleet_registry(store: FleetStore) -> MetricsRegistry:
    """The store's aggregate state as a metrics registry."""
    registry = MetricsRegistry()
    states = store.job_states()
    jobs = registry.gauge(
        "repro_fleet_jobs", "Fleet jobs by lifecycle state."
    )
    for name in JOB_STATES:
        jobs.set(
            sum(1 for s in states.values() if s == name), state=name
        )
    events = registry.counter(
        "repro_fleet_events_total", "Store job events by kind."
    )
    for event in store.events:
        if event.get("type") == "job":
            events.inc(1.0, event=str(event.get("event")))

    degradation = registry.counter(
        "repro_fleet_degradation_total",
        "Summed per-job degradation counters across finished jobs.",
    )
    rounds = registry.counter(
        "repro_fleet_rounds_total", "Simulated rounds across finished jobs."
    )
    wall = registry.histogram(
        "repro_fleet_job_wall_seconds", "Per-job wall-clock duration."
    )
    pi = registry.gauge(
        "repro_fleet_pi_mean",
        "Mean forwarder-set size per scenario family/strategy group.",
    )
    sums: dict = {}
    for record in store.results.values():
        if record.get("kind") != "scenario":
            continue
        for key, value in (record.get("degradation") or {}).items():
            if value:
                degradation.inc(float(value), field=key)
        metrics = record.get("metrics") or {}
        if metrics.get("rounds_completed"):
            rounds.inc(float(metrics["rounds_completed"]), outcome="completed")
        if metrics.get("rounds_failed"):
            rounds.inc(float(metrics["rounds_failed"]), outcome="failed")
        timing = record.get("timing") or {}
        if "wall_seconds" in timing:
            wall.observe(float(timing["wall_seconds"]))
        axes = record.get("axes") or {}
        config = record.get("config") or {}
        group = (
            str(axes.get("family", "baseline")),
            str(config.get("strategy", "")),
        )
        if metrics.get("pi_mean") is not None:
            bucket = sums.setdefault(group, [0.0, 0])
            bucket[0] += float(metrics["pi_mean"])
            bucket[1] += 1
    for (family, strategy), (total, count) in sorted(sums.items()):
        pi.set(total / count, family=family, strategy=strategy)
    return registry


class _MetricsHandler(BaseHTTPRequestHandler):
    store: FleetStore  # injected by serve_store

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.rstrip("/") not in ("", "/metrics"):
            self.send_error(404, "only /metrics is served")
            return
        body = build_fleet_registry(self.store.reload()).to_prometheus()
        payload = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes are not worth stderr noise


def make_server(
    store_path, host: str = "127.0.0.1", port: int = 0
) -> Tuple[HTTPServer, str]:
    """An unstarted single-threaded server bound to ``host:port``
    (port 0 picks a free one); returns it with its ``/metrics`` URL."""
    store = FleetStore(store_path, create=False)
    handler = type("BoundMetricsHandler", (_MetricsHandler,), {"store": store})
    server = HTTPServer((host, port), handler)
    url = f"http://{server.server_address[0]}:{server.server_address[1]}/metrics"
    return server, url


def serve_store(
    store_path,
    host: str = "127.0.0.1",
    port: int = 9464,
    progress: Optional[object] = print,
) -> int:
    """Serve ``/metrics`` until interrupted; returns the exit code."""
    server, url = make_server(store_path, host=host, port=port)
    if progress:
        progress(f"[fleet] serving Prometheus metrics at {url} (Ctrl-C stops)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
