"""Process-pool sweep executor: resumable, heartbeat-ed, crash-tolerant.

Scheduling reuses the harness's pool idiom (``REPRO_JOBS`` resolved via
:func:`repro.experiments.runner.default_n_jobs`; one
``ProcessPoolExecutor``, at most ``n_jobs`` jobs in flight).  The
:class:`~repro.fleet.store.FleetStore` is the only coordination state:

- jobs whose id is already ``completed`` in the store are *skipped*
  (the content-addressed resume contract — see ``repro.fleet.spec``);
- every submission appends ``started``; while a job runs the parent
  appends ``heartbeat`` events on a wall-clock cadence, so a dashboard
  tailing the log can distinguish "slow" from "dead";
- a worker crash (the future raises, or the pool itself breaks) costs
  one attempt; jobs retry up to ``retry.max_retries`` times with the
  capped-backoff schedule of :class:`repro.sim.faults.RetryPolicy`
  before a ``failed`` event is written;
- SIGINT drains gracefully: no new submissions, in-flight jobs run to
  completion and record their results, never-started jobs are marked
  ``resumable``.  A second SIGINT falls through to the default handler
  (hard kill) — the store's append-only logs tolerate that too.

``max_jobs`` bounds how many jobs *this invocation* completes (the
deterministic interrupt used by the CI smoke lane and the resume
tests); the cutoff takes the same ``resumable`` path as SIGINT.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.runner import default_n_jobs
from repro.fleet.spec import FleetJob, SweepSpec, config_from_dict
from repro.fleet.store import FleetStore
from repro.sim.faults import RetryPolicy

#: Conservative default retry budget for crashed workers: a sweep job is
#: deterministic, so a second identical crash usually means the config
#: itself is broken — burn the budget fast and mark the job failed.
DEFAULT_RETRY = RetryPolicy(max_retries=2, base_delay=0.1, max_delay=2.0, jitter=0.0)


def execute_job(payload: Mapping[str, object]) -> Dict[str, object]:
    """Run one fleet job (pool worker entry point).

    Rebuilds the :class:`ExperimentConfig` from the shipped payload,
    runs the scenario, and returns the JSON-safe result record the
    store appends.  Deterministic fields (``metrics``, ``degradation``)
    depend only on the config; ``timing`` carries wall-clock facts and
    is informational.
    """
    from repro.experiments.scenario import run_scenario

    config = config_from_dict(payload["config"])
    t0 = time.perf_counter()
    result = run_scenario(config)
    wall = time.perf_counter() - t0
    rounds_completed = sum(s.rounds_completed for s in result.series_stats)
    rounds_failed = sum(s.failed_rounds for s in result.series_stats)
    sim_duration = float(result.sim_duration)
    record: Dict[str, object] = {
        "job_id": payload["job_id"],
        "kind": "scenario",
        "spec": payload.get("spec", ""),
        "axes": dict(payload.get("axes", {})),
        "config": dict(payload["config"]),
        "metrics": {
            "pi_mean": result.average_forwarder_set_size(),
            "path_quality": result.average_path_quality(),
            "good_payoff_mean": result.average_good_series_payoff(),
            "rounds_completed": rounds_completed,
            "rounds_failed": rounds_failed,
            "reformations": result.total_reformations,
            "sim_duration": sim_duration,
            #: Deterministic throughput: completed rounds per simulated
            #: minute (wall-clock throughput lives under ``timing``).
            "throughput": (
                rounds_completed / sim_duration if sim_duration else 0.0
            ),
        },
        "degradation": dict(result.degradation),
        "timing": {
            "wall_seconds": wall,
            "phase_timings": dict(result.phase_timings),
        },
    }
    return record


@dataclass
class FleetRunOutcome:
    """What one ``fleet run`` invocation did."""

    total: int
    completed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    resumable: List[str] = field(default_factory=list)
    interrupted: bool = False

    @property
    def converged(self) -> bool:
        """Every job in the spec has a completed result."""
        return len(self.completed) + len(self.skipped) == self.total

    def summary(self) -> str:
        bits = [
            f"jobs: {self.total}",
            f"completed: {len(self.completed)}",
            f"skipped (already done): {len(self.skipped)}",
        ]
        if self.failed:
            bits.append(f"failed: {len(self.failed)}")
        if self.resumable:
            bits.append(f"resumable: {len(self.resumable)}")
        if self.interrupted:
            bits.append("interrupted — re-run to resume")
        return "  ".join(bits)


class _InterruptFlag:
    """SIGINT latch; restores the previous handler on exit."""

    def __init__(self, install: bool):
        self.tripped = False
        self._install = install and threading.current_thread() is threading.main_thread()
        self._previous = None

    def __enter__(self) -> "_InterruptFlag":
        if self._install:
            self._previous = signal.signal(signal.SIGINT, self._handle)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._install:
            signal.signal(signal.SIGINT, self._previous)
        return False

    def _handle(self, signum, frame):
        if self.tripped:
            # Second SIGINT: defer to the previous (default) behaviour.
            signal.signal(signal.SIGINT, self._previous)
            raise KeyboardInterrupt
        self.tripped = True


def run_fleet(
    spec: Union[SweepSpec, Sequence[FleetJob]],
    store: FleetStore,
    n_jobs: Optional[int] = None,
    max_jobs: Optional[int] = None,
    heartbeat: float = 5.0,
    retry: RetryPolicy = DEFAULT_RETRY,
    worker: Optional[Callable[[Mapping[str, object]], Dict[str, object]]] = None,
    install_signal_handler: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FleetRunOutcome:
    """Execute a sweep against a store, resuming completed work.

    ``worker`` defaults to :func:`execute_job`; tests substitute
    module-level fakes (it must stay picklable for the pool path).
    """
    jobs = list(spec.expand() if isinstance(spec, SweepSpec) else spec)
    if n_jobs is None:
        n_jobs = default_n_jobs()
    if worker is None:
        worker = execute_job
    say = progress if progress is not None else (lambda _msg: None)

    outcome = FleetRunOutcome(total=len(jobs))
    known_states = store.job_states()
    completed_before = store.completed_job_ids()
    pending: List[FleetJob] = []
    for job in jobs:
        if job.job_id in completed_before:
            outcome.skipped.append(job.job_id)
            continue
        if job.job_id not in known_states:
            store.append_event("scheduled", job.job_id, axes=dict(job.axes))
        pending.append(job)
    spec_name = jobs[0].spec_name if jobs else ""
    store.append_note(
        "run.start",
        spec=spec_name,
        n_jobs=len(jobs),
        n_pending=len(pending),
        n_skipped=len(outcome.skipped),
        workers=n_jobs,
    )
    say(
        f"[fleet] {spec_name or 'sweep'}: {len(jobs)} jobs, "
        f"{len(outcome.skipped)} already complete, {len(pending)} to run "
        f"({n_jobs} worker{'s' if n_jobs != 1 else ''})"
    )

    with _InterruptFlag(install_signal_handler) as interrupt:
        if n_jobs == 1:
            _run_serial(pending, store, worker, retry, max_jobs, interrupt, outcome, say)
        else:
            _run_pool(
                pending, store, worker, retry, n_jobs, max_jobs, heartbeat,
                interrupt, outcome, say,
            )
        outcome.interrupted = interrupt.tripped or (
            max_jobs is not None and bool(outcome.resumable)
        )

    store.append_note(
        "run.finish",
        spec=spec_name,
        completed=len(outcome.completed),
        failed=len(outcome.failed),
        resumable=len(outcome.resumable),
        interrupted=outcome.interrupted,
    )
    store.write_index()
    say(f"[fleet] {outcome.summary()}")
    return outcome


def _attempt_budget(retry: RetryPolicy) -> int:
    return retry.max_retries + 1


def _record_completion(
    store: FleetStore,
    job: FleetJob,
    record: Dict[str, object],
    attempt: int,
    outcome: FleetRunOutcome,
    say: Callable[[str], None],
) -> None:
    record.setdefault("attempt", attempt)
    store.append_result(record)
    store.append_event("completed", job.job_id, attempt=attempt)
    outcome.completed.append(job.job_id)
    say(f"[fleet] done {job.job_id}  {_axes_brief(job)}")


def _record_failure(
    store: FleetStore,
    job: FleetJob,
    error: BaseException,
    attempt: int,
    outcome: FleetRunOutcome,
    say: Callable[[str], None],
) -> None:
    store.append_event(
        "failed", job.job_id, attempt=attempt, error=repr(error)
    )
    outcome.failed.append(job.job_id)
    say(f"[fleet] FAILED {job.job_id} after {attempt} attempts: {error!r}")


def _mark_resumable(
    store: FleetStore,
    job: FleetJob,
    outcome: FleetRunOutcome,
    reason: str,
) -> None:
    store.append_event("resumable", job.job_id, reason=reason)
    outcome.resumable.append(job.job_id)


def _axes_brief(job: FleetJob) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(job.axes.items()))


def _run_serial(
    pending: List[FleetJob],
    store: FleetStore,
    worker: Callable[[Mapping[str, object]], Dict[str, object]],
    retry: RetryPolicy,
    max_jobs: Optional[int],
    interrupt: _InterruptFlag,
    outcome: FleetRunOutcome,
    say: Callable[[str], None],
) -> None:
    done_this_run = 0
    for idx, job in enumerate(pending):
        cutoff = max_jobs is not None and done_this_run >= max_jobs
        if interrupt.tripped or cutoff:
            reason = "sigint" if interrupt.tripped else "max-jobs"
            for leftover in pending[idx:]:
                _mark_resumable(store, leftover, outcome, reason)
            return
        for attempt in range(1, _attempt_budget(retry) + 1):
            store.append_event("started", job.job_id, attempt=attempt)
            try:
                record = worker(job.payload())
            except BaseException as exc:  # noqa: B036 - worker crash boundary
                if isinstance(exc, KeyboardInterrupt):
                    _mark_resumable(store, job, outcome, "sigint")
                    interrupt.tripped = True
                    break
                if attempt >= _attempt_budget(retry):
                    _record_failure(store, job, exc, attempt, outcome, say)
                    break
                store.append_event(
                    "resumable", job.job_id, reason="retry", error=repr(exc)
                )
                time.sleep(retry.delay(attempt - 1))
            else:
                _record_completion(store, job, record, attempt, outcome, say)
                done_this_run += 1
                break


def _run_pool(
    pending: List[FleetJob],
    store: FleetStore,
    worker: Callable[[Mapping[str, object]], Dict[str, object]],
    retry: RetryPolicy,
    n_jobs: int,
    max_jobs: Optional[int],
    heartbeat: float,
    interrupt: _InterruptFlag,
    outcome: FleetRunOutcome,
    say: Callable[[str], None],
) -> None:
    queue: List[FleetJob] = list(pending)
    attempts: Dict[str, int] = {}
    inflight: Dict[Future, FleetJob] = {}
    done_this_run = 0
    last_beat = time.monotonic()
    pool = ProcessPoolExecutor(max_workers=n_jobs)
    try:
        while queue or inflight:
            cutoff = max_jobs is not None and done_this_run >= max_jobs
            if interrupt.tripped or cutoff:
                reason = "sigint" if interrupt.tripped else "max-jobs"
                for job in queue:
                    _mark_resumable(store, job, outcome, reason)
                queue = []
                if not inflight:
                    break
            while queue and len(inflight) < n_jobs and not interrupt.tripped and not cutoff:
                job = queue.pop(0)
                attempt = attempts.get(job.job_id, 0) + 1
                attempts[job.job_id] = attempt
                store.append_event("started", job.job_id, attempt=attempt)
                inflight[pool.submit(worker, job.payload())] = job
            if not inflight:
                continue
            finished, _running = wait(
                inflight, timeout=heartbeat, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            if now - last_beat >= heartbeat:
                for future, job in inflight.items():
                    if not future.done():
                        store.append_event(
                            "heartbeat", job.job_id,
                            attempt=attempts[job.job_id],
                        )
                last_beat = now
            pool_broken = False
            for future in finished:
                job = inflight.pop(future)
                attempt = attempts[job.job_id]
                try:
                    record = future.result()
                except BaseException as exc:  # noqa: B036 - worker crash boundary
                    if isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                    if attempt >= _attempt_budget(retry):
                        _record_failure(store, job, exc, attempt, outcome, say)
                    else:
                        store.append_event(
                            "resumable", job.job_id,
                            reason="retry", error=repr(exc),
                        )
                        time.sleep(retry.delay(attempt - 1))
                        queue.append(job)
                else:
                    _record_completion(store, job, record, attempt, outcome, say)
                    done_this_run += 1
            if pool_broken:
                # A hard worker crash poisons every sibling future; pull
                # the survivors back onto the queue (their attempt count
                # stands) and start a fresh pool.
                for future, job in list(inflight.items()):
                    inflight.pop(future)
                    if attempts[job.job_id] >= _attempt_budget(retry):
                        _record_failure(
                            store, job,
                            BrokenProcessPool("worker pool crashed"),
                            attempts[job.job_id], outcome, say,
                        )
                    else:
                        store.append_event(
                            "resumable", job.job_id, reason="pool-crash"
                        )
                        queue.append(job)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=n_jobs)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
