"""Live terminal dashboard: tail a fleet store, render job state.

Stdlib-only ANSI rendering (no curses dependency): each refresh clears
the screen and reprints one frame built from the store's replayed event
log and results.  The frame shows per-state job counts, completion
progress, wall-clock throughput and ETA (from ``completed`` event
timestamps), rolling degradation counters across finished jobs, the
busiest event kinds, and the most recent per-job activity — including
heartbeats, so a stalled worker is visible as a job whose last
heartbeat stops advancing.

Keys: ``q`` quits (when stdin is a TTY); Ctrl-C always works.
``--once`` renders a single frame to stdout and exits — that is what
the CI smoke lane uploads as the dashboard snapshot artifact.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

from repro.fleet.store import JOB_STATES, FleetStore
from repro.sim.monitoring import ascii_bars

_CLEAR = "\x1b[2J\x1b[H"


def _bar(done: int, total: int, width: int = 40) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * done / total))
    return "[" + "#" * filled + "-" * (width - filled) + f"] {done}/{total}"


def _fmt_eta(seconds: float) -> str:
    if seconds < 0:
        return "?"
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_dashboard(store: FleetStore, max_recent: int = 10) -> str:
    """One dashboard frame as a printable string."""
    out: List[str] = []
    states = store.job_states()
    by_state: Dict[str, int] = {name: 0 for name in JOB_STATES}
    for state in states.values():
        by_state[state] = by_state.get(state, 0) + 1
    total = len(states)
    done = by_state.get("completed", 0)

    spec = ""
    workers = None
    for event in store.events:
        if event.get("type") == "note" and event.get("note") == "run.start":
            spec = str(event.get("spec", "")) or spec
            workers = event.get("workers", workers)

    out.append("== repro fleet ==" + (f"  spec: {spec}" if spec else ""))
    out.append(_bar(done, total))
    out.append(
        "  ".join(
            f"{name}: {by_state[name]}"
            for name in JOB_STATES
            if by_state.get(name)
        )
        or "no jobs scheduled yet"
    )

    # -- throughput / ETA from completed-event wall timestamps -----------
    completed_ts = sorted(
        float(e["ts"])
        for e in store.events
        if e.get("type") == "job" and e.get("event") == "completed" and "ts" in e
    )
    if len(completed_ts) >= 2 and completed_ts[-1] > completed_ts[0]:
        rate = (len(completed_ts) - 1) / (completed_ts[-1] - completed_ts[0])
        remaining = total - done
        n_workers = int(workers) if workers else 1
        out.append(
            f"throughput: {rate * 60:.1f} jobs/min"
            + (
                f"   ETA: {_fmt_eta(remaining / rate / max(1, n_workers) * 1)}"
                if remaining and rate > 0
                else ""
            )
        )

    # -- rolling degradation / failure counters --------------------------
    degradation: Dict[str, float] = {}
    failed_rounds = 0
    for record in store.results.values():
        for key, value in (record.get("degradation") or {}).items():
            degradation[key] = degradation.get(key, 0) + value
        metrics = record.get("metrics") or {}
        failed_rounds += int(metrics.get("rounds_failed", 0) or 0)
    interesting = {k: v for k, v in sorted(degradation.items()) if v}
    if interesting or failed_rounds:
        out.append("")
        out.append("== degradation (all finished jobs) ==")
        if failed_rounds:
            out.append(f"  rounds_failed  {failed_rounds}")
        for key, value in interesting.items():
            out.append(f"  {key}  {value:g}")

    # -- busiest event kinds ---------------------------------------------
    kind_counts: Dict[str, int] = {}
    for event in store.events:
        if event.get("type") == "job":
            name = str(event.get("event"))
            kind_counts[name] = kind_counts.get(name, 0) + 1
    if kind_counts:
        ranked = sorted(kind_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:6]
        out.append("")
        out.append("== store events ==")
        out.append(
            ascii_bars(
                [k for k, _ in ranked], [float(v) for _, v in ranked]
            )
        )

    # -- recent activity --------------------------------------------------
    recent = [e for e in store.events if e.get("type") == "job"][-max_recent:]
    if recent:
        out.append("")
        out.append(f"== recent activity (last {len(recent)} events) ==")
        for event in recent:
            extra = ""
            if event.get("event") == "failed":
                extra = f"  {event.get('error', '')}"
            elif event.get("event") == "resumable":
                extra = f"  ({event.get('reason', '')})"
            out.append(
                f"  {event.get('event'):<10} {event.get('job_id')}"
                f"  attempt={event.get('attempt', 1)}{extra}"
            )
    return "\n".join(out)


def _poll_quit(timeout: float) -> bool:
    """True if the user pressed ``q`` within ``timeout`` seconds."""
    if not sys.stdin.isatty():
        time.sleep(timeout)
        return False
    import select

    ready, _, _ = select.select([sys.stdin], [], [], timeout)
    if not ready:
        return False
    return sys.stdin.readline().strip().lower() == "q"


def run_dashboard(
    store_path,
    interval: float = 1.0,
    once: bool = False,
    max_frames: Optional[int] = None,
    out=None,
) -> int:
    """Dashboard loop; returns the process exit code."""
    stream = out if out is not None else sys.stdout
    store = FleetStore(store_path, create=False)
    frames = 0
    while True:
        frame = render_dashboard(store)
        if once:
            print(frame, file=stream)
            return 0
        print(_CLEAR + frame, file=stream, flush=True)
        frames += 1
        if max_frames is not None and frames >= max_frames:
            return 0
        try:
            if _poll_quit(interval):
                return 0
        except KeyboardInterrupt:
            return 0
        store.reload()
