"""Append-only on-disk results store (``repro-fleet/store-v1``).

Layout of a store directory::

    store/
      events.jsonl    # append-only job lifecycle log (source of truth)
      results.jsonl   # append-only per-job result records
      index.json      # compact rebuilt index (a cache, atomically written)

The two JSONL files are the durable artifact: every line is appended
and flushed independently, so a killed run loses at most a partial
trailing line (tolerated and skipped with a warning on replay — the
same forward-compat posture as the obs readers).  ``index.json`` is a
derived convenience for dashboards and external tools; it is rebuilt
from the logs on every open and rewritten atomically, never read back
as authority.

Job lifecycle events (``type: "job"``): ``scheduled`` → ``started`` →
(``heartbeat``...) → ``completed`` | ``failed`` | ``resumable``.  A
``resumable`` event marks a job whose execution was interrupted
(SIGINT drain, ``--max-jobs`` cutoff, worker crash before the retry
budget) — it stays pending and a later ``fleet run`` picks it up.

Result records (``type: "result"``) carry the job's resolved config,
sweep coordinates, deterministic metrics (forwarder-set size, path
quality, payoffs, sim-time throughput), degradation counters, phase
timings and optional trace path.  :meth:`FleetStore.query` filters,
groups and aggregates over them; aggregation sorts each group by
``job_id`` first, so results are bit-identical regardless of the order
jobs happened to complete in (interrupted-and-resumed runs aggregate
exactly like uninterrupted ones).

``ingest_bench`` folds ``BENCH_routing.json`` (the per-commit benchmark
trajectory, ``repro-bench/trajectory-v1``) or a compact bench report
into the same store as ``kind: "bench"`` records, making the perf
history queryable through the same API.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

STORE_SCHEMA = "repro-fleet/store-v1"

#: Job lifecycle states derived from the event log, in precedence order.
JOB_STATES = ("scheduled", "started", "resumable", "failed", "completed")

_AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda xs: sum(xs) / len(xs),
    "sum": lambda xs: sum(xs),
    "min": lambda xs: min(xs),
    "max": lambda xs: max(xs),
    "count": lambda xs: float(len(xs)),
}


def _get_path(record: Mapping[str, object], dotted: str):
    """Resolve ``"config.tau"``-style dotted paths into nested dicts."""
    value: object = record
    for part in dotted.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return None
        value = value[part]
    return value


class FleetStore:
    """One sweep's durable event log + results, with query access."""

    def __init__(self, path, create: bool = True):
        self.path = Path(path)
        if create:
            self.path.mkdir(parents=True, exist_ok=True)
        elif not self.path.is_dir():
            raise FileNotFoundError(f"no fleet store at {self.path}")
        self.events_path = self.path / "events.jsonl"
        self.results_path = self.path / "results.jsonl"
        self.index_path = self.path / "index.json"
        #: Replayed state: every event line, in order.
        self.events: List[Dict[str, object]] = []
        #: Replayed result records keyed by job id (last attempt wins).
        self.results: Dict[str, Dict[str, object]] = {}
        self._replay()

    # -- append side ------------------------------------------------------
    def _append(self, path: Path, obj: Mapping[str, object]) -> None:
        line = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_event(self, event: str, job_id: str, **data: object) -> Dict[str, object]:
        """Record one job lifecycle event (flushed durably)."""
        obj: Dict[str, object] = {
            "type": "job",
            "event": event,
            "job_id": job_id,
            "ts": time.time(),
        }
        obj.update(data)
        self._append(self.events_path, obj)
        self.events.append(obj)
        return obj

    def append_note(self, note: str, **data: object) -> None:
        """Record a run-level event (spec registered, run started...)."""
        obj: Dict[str, object] = {"type": "note", "note": note, "ts": time.time()}
        obj.update(data)
        self._append(self.events_path, obj)
        self.events.append(obj)

    def append_result(self, record: Mapping[str, object]) -> None:
        obj = {"type": "result", **record}
        self._append(self.results_path, obj)
        self.results[str(obj["job_id"])] = obj

    # -- replay side ------------------------------------------------------
    def _iter_lines(self, path: Path) -> Iterable[Dict[str, object]]:
        if not path.exists():
            return
        for line_no, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                # A partial trailing line from a killed writer is
                # expected; anything else is still not worth refusing
                # the whole store for.
                warnings.warn(
                    f"{path}:{line_no}: skipping corrupt line", stacklevel=3
                )
                continue
            if not isinstance(obj, dict):
                warnings.warn(
                    f"{path}:{line_no}: skipping non-object line", stacklevel=3
                )
                continue
            yield obj

    def _replay(self) -> None:
        self.events = []
        self.results = {}
        for obj in self._iter_lines(self.events_path):
            kind = obj.get("type")
            if kind == "meta":
                schema = obj.get("schema")
                if schema is not None and schema != STORE_SCHEMA:
                    warnings.warn(
                        f"store schema {schema!r} differs from "
                        f"{STORE_SCHEMA!r}; reading known fields only",
                        stacklevel=2,
                    )
                continue
            self.events.append(obj)
        for obj in self._iter_lines(self.results_path):
            if obj.get("type") == "result" and "job_id" in obj:
                self.results[str(obj["job_id"])] = obj
        if not self.events_path.exists():
            self._append(
                self.events_path,
                {"type": "meta", "schema": STORE_SCHEMA, "created": time.time()},
            )
        if not self.results_path.exists():
            self._append(
                self.results_path,
                {"type": "meta", "schema": STORE_SCHEMA},
            )

    def reload(self) -> "FleetStore":
        """Re-replay the logs (dashboard tailing a live run)."""
        self._replay()
        return self

    # -- derived state ----------------------------------------------------
    def job_states(self) -> Dict[str, str]:
        """Current state per job id, from the event log."""
        states: Dict[str, str] = {}
        for event in self.events:
            if event.get("type") != "job":
                continue
            name = event.get("event")
            if name in JOB_STATES:
                states[str(event["job_id"])] = str(name)
        return states

    def completed_job_ids(self) -> "set[str]":
        return {
            job_id
            for job_id, state in self.job_states().items()
            if state == "completed"
        }

    def started_counts(self) -> Dict[str, int]:
        """How many times each job id emitted ``started`` (re-execution
        audit: a resumed sweep must not start completed jobs again)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.get("type") == "job" and event.get("event") == "started":
                job_id = str(event["job_id"])
                counts[job_id] = counts.get(job_id, 0) + 1
        return counts

    # -- query API --------------------------------------------------------
    def query(
        self,
        where: Optional[Mapping[str, object]] = None,
        group_by: Optional[Sequence[str]] = None,
        select: str = "metrics.pi_mean",
        agg: str = "mean",
        kind: Optional[str] = "scenario",
    ) -> List[Dict[str, object]]:
        """Filter, group and aggregate result records.

        ``where`` maps dotted record paths to required values (or
        predicates).  ``group_by`` lists dotted paths whose distinct
        value tuples form the groups; ``select`` names the numeric field
        to aggregate with ``agg`` (mean/sum/min/max/count).  Rows come
        back sorted by group key; each group's samples are sorted by
        job id before aggregation, so the result is independent of
        completion order.
        """
        if agg not in _AGGREGATES:
            raise ValueError(
                f"unknown aggregate {agg!r}; expected one of "
                f"{sorted(_AGGREGATES)}"
            )
        records = [
            r
            for r in self.results.values()
            if kind is None or r.get("kind") == kind
        ]
        if where:
            for path, want in where.items():
                if callable(want):
                    records = [r for r in records if want(_get_path(r, path))]
                else:
                    records = [r for r in records if _get_path(r, path) == want]
        group_fields = list(group_by or [])
        groups: Dict[tuple, List[Dict[str, object]]] = {}
        for record in records:
            key = tuple(_json_key(_get_path(record, f)) for f in group_fields)
            groups.setdefault(key, []).append(record)
        rows: List[Dict[str, object]] = []
        for key in sorted(groups, key=repr):
            members = sorted(groups[key], key=lambda r: str(r.get("job_id")))
            samples = [
                float(v)
                for v in (_get_path(r, select) for r in members)
                if v is not None
            ]
            row: Dict[str, object] = dict(zip(group_fields, key))
            row["n"] = len(samples)
            row[f"{agg}({select})"] = (
                _AGGREGATES[agg](samples) if samples else None
            )
            rows.append(row)
        return rows

    # -- bench ingestion --------------------------------------------------
    def ingest_bench(self, path) -> int:
        """Fold a benchmark report into the store as ``bench`` records.

        Accepts the repo-root trajectory file
        (``repro-bench/trajectory-v1``: per-commit mean seconds per
        benchmark) or a compact report (``repro-bench/compact-v1``).
        Returns the number of records appended.  Job ids are
        content-addressed on (commit, benchmark name), so re-ingesting
        the same file is idempotent.
        """
        import hashlib

        data = json.loads(Path(path).read_text())
        schema = data.get("schema")
        entries: List[Dict[str, object]] = []
        if schema == "repro-bench/trajectory-v1":
            for commit, run in data.get("runs", {}).items():
                for name, mean in run.get("benchmarks", {}).items():
                    entries.append(
                        {
                            "commit": commit,
                            "benchmark": name,
                            "mean": float(mean),
                            "datetime": run.get("datetime"),
                        }
                    )
        elif schema == "repro-bench/compact-v1":
            commit = data.get("commit") or "worktree"
            for name, stats in data.get("benchmarks", {}).items():
                entries.append(
                    {
                        "commit": commit,
                        "benchmark": name,
                        "mean": float(stats["mean"]),
                        "datetime": data.get("datetime"),
                    }
                )
        else:
            raise ValueError(
                f"unrecognised bench schema {schema!r} in {path}; expected "
                "repro-bench/trajectory-v1 or repro-bench/compact-v1"
            )
        appended = 0
        for entry in entries:
            key = f"bench:{entry['commit']}:{entry['benchmark']}"
            job_id = hashlib.sha256(key.encode()).hexdigest()[:16]
            if job_id in self.results:
                continue
            self.append_result(
                {
                    "job_id": job_id,
                    "kind": "bench",
                    "config": {
                        "commit": entry["commit"],
                        "benchmark": entry["benchmark"],
                    },
                    "metrics": {"mean_seconds": entry["mean"]},
                    "datetime": entry["datetime"],
                }
            )
            appended += 1
        return appended

    # -- compact index ----------------------------------------------------
    def write_index(self) -> Path:
        """Atomically rewrite ``index.json`` from the replayed state."""
        states = self.job_states()
        index = {
            "schema": STORE_SCHEMA,
            "jobs": {
                job_id: {
                    "state": state,
                    "has_result": job_id in self.results,
                }
                for job_id, state in sorted(states.items())
            },
            "n_results": len(self.results),
            "n_events": len(self.events),
        }
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(index, indent=2, sort_keys=True))
        os.replace(tmp, self.index_path)
        return self.index_path


def _json_key(value: object) -> object:
    """Hashable form of a group-by value (lists/dicts via canonical JSON)."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return value
