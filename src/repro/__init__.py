"""repro - reproduction of "Incentive-Driven P2P Anonymity System" (ICPP 2007).

A complete, self-contained implementation of the paper's incentive
mechanism for P2P anonymity forwarding, together with every substrate the
evaluation depends on: a deterministic discrete-event simulator, a churned
P2P overlay with active-probing availability estimation, the
payment/bank infrastructure, game-theoretic analysis tools, adversary
models, and an experiment harness that regenerates every figure and table
in the paper's evaluation.

Quickstart::

    from repro.experiments import ExperimentConfig, run_scenario

    cfg = ExperimentConfig(seed=1, malicious_fraction=0.1, strategy="utility-I")
    result = run_scenario(cfg)
    print(result.summary())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
paper's figures/tables.

Subpackages load lazily (PEP 562): ``import repro`` is cheap, and
stdlib-only tooling such as ``repro.analysis`` never drags in the
scientific stack.  ``repro.<subpackage>`` still works as an attribute
after ``import repro``.
"""

from importlib import import_module
from typing import List

__version__ = "1.0.0"

_SUBPACKAGES = (
    "adversary",
    "analysis",
    "core",
    "experiments",
    "gametheory",
    "network",
    "payment",
    "sim",
    "obs",
    "fleet",
)

__all__ = ["__version__", *_SUBPACKAGES]


def __getattr__(name: str) -> object:
    if name in _SUBPACKAGES:
        return import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
