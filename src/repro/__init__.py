"""repro - reproduction of "Incentive-Driven P2P Anonymity System" (ICPP 2007).

A complete, self-contained implementation of the paper's incentive
mechanism for P2P anonymity forwarding, together with every substrate the
evaluation depends on: a deterministic discrete-event simulator, a churned
P2P overlay with active-probing availability estimation, the
payment/bank infrastructure, game-theoretic analysis tools, adversary
models, and an experiment harness that regenerates every figure and table
in the paper's evaluation.

Quickstart::

    from repro.experiments import ExperimentConfig, run_scenario

    cfg = ExperimentConfig(seed=1, malicious_fraction=0.1, strategy="utility-I")
    result = run_scenario(cfg)
    print(result.summary())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
paper's figures/tables.
"""

__version__ = "1.0.0"

from repro import adversary, core, experiments, gametheory, network, payment, sim

__all__ = [
    "__version__",
    "adversary",
    "core",
    "experiments",
    "gametheory",
    "network",
    "payment",
    "sim",
]
