"""Prometheus text-format parser: the read side of the exporter.

:meth:`repro.obs.metrics.MetricsRegistry.to_prometheus` emits text
exposition format 0.0.4; :func:`parse_prometheus` inverts it back into a
populated :class:`MetricsRegistry`, so scraped or archived ``/metrics``
snapshots become queryable objects again (the fleet store and dashboard
ingest path).  The round trip is exact: for any registry ``r``,
``parse_prometheus(r.to_prometheus()).to_prometheus() == r.to_prometheus()``
— including labelled children and histogram buckets, which are
de-cumulated back into per-bucket counts.

Forward compatibility mirrors the JSON reader: unknown metric types,
malformed sample lines, and samples with no preceding ``# TYPE``
declaration warn and are skipped (the latter would otherwise be
ambiguous between counter and gauge), never raise.
"""

from __future__ import annotations

import re
import warnings
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    if not raw:
        return {}
    return {name: _unescape(value) for name, value in _LABEL_RE.findall(raw)}


def _family_of(name: str, types: Dict[str, str]) -> Tuple[Optional[str], str]:
    """(family name, sample suffix) for one sample name.

    Histogram samples are named ``<family>_bucket/_sum/_count``; the
    family is whichever declared histogram the name extends.
    """
    if name in types:
        return name, ""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base, suffix
    return None, ""


def parse_prometheus(text: str) -> MetricsRegistry:
    """Parse Prometheus text exposition format into a registry."""
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    # family -> label-key(sans le) -> {"buckets": [(bound, cumulative)],
    #                                  "sum": float, "count": float}
    hist_state: Dict[str, Dict[Tuple[Tuple[str, str], ...], Dict[str, object]]] = {}
    registry = MetricsRegistry()

    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                types[parts[2]] = parts[3] if len(parts) > 3 else "untyped"
            elif len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            warnings.warn(
                f"prometheus line {line_no}: unparseable sample {line!r} skipped",
                stacklevel=2,
            )
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        family, suffix = _family_of(name, types)
        if family is None:
            warnings.warn(
                f"prometheus line {line_no}: sample {name!r} has no TYPE "
                "declaration; skipped",
                stacklevel=2,
            )
            continue
        mtype = types[family]
        help_text = helps.get(family, "")
        if mtype == "counter":
            counter: Counter = registry.counter(family, help_text)
            counter._values[_key(labels)] = value
        elif mtype == "gauge":
            gauge: Gauge = registry.gauge(family, help_text)
            gauge._values[_key(labels)] = value
        elif mtype == "histogram":
            bounds = labels.pop("le", None)
            state = hist_state.setdefault(family, {}).setdefault(
                _key(labels), {"buckets": [], "sum": 0.0, "count": 0.0}
            )
            if suffix == "_bucket":
                state["buckets"].append((bounds, value))  # type: ignore[union-attr]
            elif suffix == "_sum":
                state["sum"] = value
            elif suffix == "_count":
                state["count"] = value
        else:
            warnings.warn(
                f"prometheus line {line_no}: unknown metric type {mtype!r} "
                f"for {family!r} skipped",
                stacklevel=2,
            )

    for family, children in hist_state.items():
        _materialise_histogram(registry, family, helps.get(family, ""), children)
    return registry


def _key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _materialise_histogram(
    registry: MetricsRegistry,
    family: str,
    help_text: str,
    children: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]],
) -> None:
    """De-cumulate bucket samples back into a :class:`HistogramMetric`."""
    bounds: List[float] = []
    for state in children.values():
        finite = [
            _parse_value(le)
            for le, _cum in state["buckets"]  # type: ignore[union-attr]
            if le is not None and le != "+Inf"
        ]
        if len(finite) > len(bounds):
            bounds = finite
    if not bounds:
        warnings.warn(
            f"histogram {family!r} has no finite buckets; skipped",
            stacklevel=3,
        )
        return
    hist: HistogramMetric = registry.histogram(family, help_text, buckets=bounds)
    for key, state in children.items():
        cumulative = {
            _parse_value(le): cum
            for le, cum in state["buckets"]  # type: ignore[union-attr]
            if le is not None
        }
        counts: List[float] = []
        previous = 0.0
        for bound in hist.buckets:
            cum = float(cumulative.get(bound, previous))
            counts.append(cum - previous)
            previous = cum
        hist._counts[key] = counts
        hist._sums[key] = float(state["sum"])  # type: ignore[arg-type]
        hist._totals[key] = float(state["count"])  # type: ignore[arg-type]
