"""Nested span tracing with a zero-allocation disabled path.

A span is one timed region of a run: it records the simulation time at
entry and exit (via the tracer's clock) *and* the wall-clock duration
(``time.perf_counter``), plus its position in the nesting tree (parent
id and depth).  Spans are appended to :attr:`SpanTracer.spans` on
completion, so the list is ordered by exit time; the ids reconstruct
the tree.

The harness wraps four regions: ``path.build`` (one per formation
round), ``spne.decide`` (one per Utility-Model-II next-hop decision),
``probe.sweep`` (one per prober period) and ``settle.series`` (one per
series settlement), nested inside the ``scenario.setup`` /
``scenario.simulate`` / ``scenario.collect`` phase spans.

**Important**: spans must not straddle a simulation ``yield`` — the
tracer's nesting stack assumes the region runs synchronously.  All of
the wrapped regions above are yield-free.

Disabled path: :data:`NULL_TRACER` is a singleton whose ``span()``
returns one shared, stateless no-op context manager — calling it
allocates nothing, so instrumentation left in place costs a method call
and an empty ``with`` block when observability is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (immutable)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    #: Simulation time at entry / exit (minutes).
    t0: float
    t1: float
    #: Wall-clock duration (seconds).
    wall: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_json_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "type": "span",
            "id": self.span_id,
            "name": self.name,
            "depth": self.depth,
            "t0": self.t0,
            "t1": self.t1,
            "wall": self.wall,
        }
        if self.parent_id is not None:
            obj["parent"] = self.parent_id
        if self.attrs:
            obj["attrs"] = dict(self.attrs)
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, object]) -> "SpanRecord":
        return cls(
            span_id=int(obj["id"]),
            parent_id=obj.get("parent"),
            name=str(obj["name"]),
            depth=int(obj["depth"]),
            t0=float(obj["t0"]),
            t1=float(obj["t1"]),
            wall=float(obj["wall"]),
            attrs=dict(obj.get("attrs", {})),
        )


class _ActiveSpan:
    """Context manager for one live span.  Created by ``tracer.span()``;
    the bookkeeping (ids, stack) happens at ``__enter__`` so an
    un-entered span object costs nothing."""

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "parent_id", "depth",
        "t0", "_wall0",
    )

    def __init__(self, tracer: "SpanTracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: object) -> "_ActiveSpan":
        """Attach attributes mid-span (e.g. an outcome)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        tracer._next_id += 1
        self.span_id = tracer._next_id
        self.t0 = float(tracer._clock())
        stack.append(self)
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        tracer = self._tracer
        popped = tracer._stack.pop()
        if popped is not self:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span nesting violated: exiting {self.name!r} "
                f"but {popped.name!r} is innermost"
            )
        tracer.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                depth=self.depth,
                t0=self.t0,
                t1=float(tracer._clock()),
                wall=wall,
                attrs=self.attrs,
            )
        )
        return False


class SpanTracer:
    """Collects nested spans; one instance per observed run."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.spans: List[SpanRecord] = []
        self._stack: List[_ActiveSpan] = []
        self._next_id = 0

    @property
    def enabled(self) -> bool:
        return True

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """A context manager timing one synchronous region."""
        return _ActiveSpan(self, name, attrs)


class _NullSpan:
    """Shared no-op span: every method is a constant-time no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` returns the shared no-op span without
    allocating, and the span list is permanently empty."""

    __slots__ = ()

    #: Always-empty span collection (shared, immutable).
    spans: "tuple" = ()

    @property
    def enabled(self) -> bool:
        return False

    @property
    def active_depth(self) -> int:
        return 0

    def span(self, name: str = "", **attrs: object) -> _NullSpan:
        return _NULL_SPAN


#: Process-wide disabled tracer: the default for every instrumented
#: component, so call sites never branch on "is tracing on".
NULL_TRACER = NullTracer()
