"""Render a human-readable run report from JSONL traces.

Used by ``python -m repro obs summarize <trace.jsonl|dir>``.  The report
has up to five parts: the meta header, the top spans by cumulative wall
time (bar chart via :func:`repro.sim.monitoring.ascii_bars`), an
optional top-N per-event-kind breakdown (``--top N``), per-subsystem
event-count tables, and per-series round timelines (one compact line of
round outcomes per connection series).

The input may be a single trace (plain or gzip-compressed JSONL — the
reader sniffs the magic bytes) or a directory, in which case every
``*.jsonl`` / ``*.jsonl.gz`` inside is loaded and the report covers the
merged event/span streams.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.obs.events import ObsEvent, RunTrace
from repro.sim.monitoring import ascii_bars

#: Filename patterns recognised when summarising a directory.
TRACE_PATTERNS = ("*.jsonl", "*.jsonl.gz")


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    return f"{s * 1e3:.2f}ms"


def _round_marks(events: List[ObsEvent]) -> str:
    """One character per round outcome: ``#`` formed, ``x`` failed."""
    return "".join("#" if e.kind == "path.form" else "x" for e in events)


def summarize_trace(
    trace: RunTrace,
    top_spans: int = 10,
    max_series: Optional[int] = 12,
    top_kinds: Optional[int] = None,
) -> str:
    """The full report as one printable string."""
    out: List[str] = []

    # -- header ----------------------------------------------------------
    t_lo, t_hi = trace.time_range()
    out.append("== run trace ==")
    out.append(
        f"events: {len(trace.events)}   spans: {len(trace.spans)}   "
        f"sim time: {t_lo:g} .. {t_hi:g} min"
    )
    for key in sorted(trace.meta):
        out.append(f"  {key}: {trace.meta[key]}")

    # -- top spans by cumulative wall time -------------------------------
    summary = trace.span_summary()
    if summary:
        ranked = sorted(
            summary.items(), key=lambda kv: kv[1]["wall"], reverse=True
        )[:top_spans]
        out.append("")
        out.append(f"== top spans by cumulative wall time (top {len(ranked)}) ==")
        out.append(
            ascii_bars(
                [name for name, _ in ranked],
                [round(agg["wall"] * 1e3, 3) for _, agg in ranked],
            )
        )
        out.append("(bar values in milliseconds)")
        for name, agg in ranked:
            count = int(agg["count"])
            mean = agg["wall"] / count if count else 0.0
            out.append(
                f"  {name}: n={count}  wall={_fmt_seconds(agg['wall'])}  "
                f"mean={_fmt_seconds(mean)}  sim={agg['sim']:g} min"
            )

    # -- top event kinds (--top N) ---------------------------------------
    if top_kinds:
        counts = trace.counts_by_kind()
        ranked_kinds = sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_kinds]
        if ranked_kinds:
            out.append("")
            out.append(
                f"== top event kinds by count (top {len(ranked_kinds)}) =="
            )
            out.append(
                ascii_bars(
                    [kind for kind, _ in ranked_kinds],
                    [float(count) for _, count in ranked_kinds],
                )
            )

    # -- per-subsystem counter tables ------------------------------------
    by_subsystem = trace.counts_by_subsystem()
    if by_subsystem:
        out.append("")
        out.append("== event counts by subsystem ==")
        for subsystem in sorted(by_subsystem):
            kinds = by_subsystem[subsystem]
            total = sum(kinds.values())
            out.append(f"[{subsystem}] ({total} events)")
            width = max(len(k) for k in kinds)
            for kind in sorted(kinds):
                out.append(f"  {kind.ljust(width)}  {kinds[kind]}")

    # -- per-series round timelines --------------------------------------
    timeline = trace.series_timeline()
    if timeline:
        out.append("")
        out.append("== per-series round timelines (#=formed, x=failed) ==")
        cids = sorted(timeline)
        shown = cids if max_series is None else cids[:max_series]
        for cid in shown:
            events = timeline[cid]
            formed = sum(1 for e in events if e.kind == "path.form")
            out.append(
                f"  cid {cid}: {_round_marks(events)}  "
                f"({formed}/{len(events)} formed)"
            )
        if len(cids) > len(shown):
            out.append(f"  ... {len(cids) - len(shown)} more series")

    return "\n".join(out)


def trace_paths(path) -> List[Path]:
    """The trace files ``path`` names: itself, or its directory listing."""
    p = Path(path)
    if not p.is_dir():
        return [p]
    found: List[Path] = []
    for pattern in TRACE_PATTERNS:
        found.extend(p.glob(pattern))
    return sorted(set(found))


def load_traces(path) -> RunTrace:
    """Load one trace file, or merge every trace in a directory.

    Merged traces concatenate events and spans in filename order; the
    meta header records the file count so the report is honest about
    covering multiple runs (sequence numbers restart per file).
    """
    paths = trace_paths(path)
    if not paths:
        raise ValueError(f"no trace files ({'/'.join(TRACE_PATTERNS)}) in {path}")
    if len(paths) == 1:
        return RunTrace.read_jsonl(paths[0])
    merged = RunTrace(meta={"merged_traces": len(paths)})
    for p in paths:
        trace = RunTrace.read_jsonl(p)
        merged.events.extend(trace.events)
        merged.spans.extend(trace.spans)
    return merged


def summarize_file(
    path,
    top_spans: int = 10,
    max_series: Optional[int] = 12,
    top_kinds: Optional[int] = None,
) -> str:
    """Load ``path`` (a JSONL trace, optionally gzip-compressed, or a
    directory of traces) and render its report."""
    return summarize_trace(
        load_traces(path),
        top_spans=top_spans,
        max_series=max_series,
        top_kinds=top_kinds,
    )
