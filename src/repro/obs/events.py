"""Structured run events and the JSONL trace format.

Event taxonomy (``kind`` is ``"<subsystem>.<verb>"``; the subsystem is
the part before the first dot):

========================  =====================================================
kind                      emitted when
========================  =====================================================
``path.form``             a round's path was established (builder success)
``path.reform``           a formation attempt dead-ended and was restarted
``path.fail``             a round exhausted every formation attempt
``hop.forward``           one forwarding instance (sender -> receiver)
``probe.sweep``           one prober period finished (aggregate counts)
``probe.timeout``         a live neighbour was declared dead on timeouts
``probe.retry``           a timed-out probe was re-sent
``churn.join``            a node (re)joined the overlay
``churn.leave``           a node went offline for an off-time
``churn.depart``          a node left permanently
``fault.drop``            a transport message was injected-dropped
``fault.delay``           a transport message was injected-delayed
``fault.hop_loss``        a path-formation hop was lost in transit
``fault.crash``           a freshly selected forwarder was crashed
``fault.probe_timeout``   a probe attempt was timed out by injection
``bank.denial``           a bank/escrow operation hit an outage window
``escrow.deposit``        bearer tokens funded a series escrow
``escrow.release``        a series escrow paid out its validated settlement
``escrow.abort``          an opened escrow was cancelled (everything refunded)
``settle.series``         a series settlement completed end-to-end
``settle.defer``          a settlement was postponed past a bank outage
``settle.fail``           a settlement was abandoned after its retry budget
========================  =====================================================

Every event carries the simulation time ``t`` (stamped by the bus's
clock at emission), a monotonically increasing sequence number, and —
where meaningful — the series ``cid``, round index and node id.  Under
cid rotation (``repro.core.defenses.CidRotator``) path/hop events carry
the *wire* identifiers, i.e. exactly what an on-path observer sees.

The JSONL trace is one JSON object per line: a ``meta`` header, then
events in sequence order, then completed spans.  :class:`RunTrace` is
the in-memory form with the round-trip (:meth:`RunTrace.write_jsonl` /
:meth:`RunTrace.read_jsonl`) and the reconstruction helpers the
``obs summarize`` report is built from.
"""

from __future__ import annotations

import gzip
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from repro.obs.tracing import SpanRecord

#: Bumped whenever the line schema changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Schema stamp written into the JSONL meta header.  Readers accept
#: stamped and legacy (un-stamped) traces; an *unknown* stamp warns but
#: still parses the known line types (forward compatibility — newer
#: writers may add fields/kinds this reader ignores).
TRACE_SCHEMA = "repro-obs/trace-v1"

_GZIP_MAGIC = b"\x1f\x8b"


def _json_default(obj):
    """Coerce non-JSON scalars (numpy ints/floats, sets) conservatively."""
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


@dataclass(frozen=True)
class ObsEvent:
    """One structured run event (immutable)."""

    seq: int
    t: float
    kind: str
    cid: Optional[int] = None
    round_index: Optional[int] = None
    node: Optional[int] = None
    data: Mapping[str, object] = field(default_factory=dict)

    @property
    def subsystem(self) -> str:
        """The taxonomy prefix: ``"path.form"`` -> ``"path"``."""
        return self.kind.split(".", 1)[0]

    def to_json_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "type": "event",
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
        }
        if self.cid is not None:
            obj["cid"] = self.cid
        if self.round_index is not None:
            obj["round"] = self.round_index
        if self.node is not None:
            obj["node"] = self.node
        if self.data:
            obj["data"] = dict(self.data)
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, object]) -> "ObsEvent":
        return cls(
            seq=int(obj["seq"]),
            t=float(obj["t"]),
            kind=str(obj["kind"]),
            cid=obj.get("cid"),
            round_index=obj.get("round"),
            node=obj.get("node"),
            data=dict(obj.get("data", {})),
        )


class EventBus:
    """Append-only structured event sink.

    ``clock`` supplies the simulation time stamped on each event (wire it
    to ``lambda: env.now``); without one, events are stamped ``0.0``.
    Subscribers observe every event as it is emitted (streaming export);
    the full list stays available as :attr:`events`.

    The bus never draws randomness and never raises on emission — it is
    safe to call from any hot path, though the chatty channels
    (``hop.forward``) are usually gated by the caller when disabled.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.events: List[ObsEvent] = []
        self._subscribers: List[Callable[[ObsEvent], None]] = []

    def __len__(self) -> int:
        return len(self.events)

    def subscribe(self, fn: Callable[[ObsEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(
        self,
        kind: str,
        *,
        cid: Optional[int] = None,
        round_index: Optional[int] = None,
        node: Optional[int] = None,
        **data: object,
    ) -> ObsEvent:
        """Record one event, stamped with the bus clock's current time."""
        event = ObsEvent(
            seq=len(self.events),
            t=float(self._clock()),
            kind=kind,
            cid=cid,
            round_index=round_index,
            node=node,
            data=data,
        )
        self.events.append(event)
        for fn in self._subscribers:
            fn(event)
        return event

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts


@dataclass
class RunTrace:
    """Frozen per-run trace: meta header + events + completed spans.

    This is what ``ScenarioResult.trace`` holds and what the JSONL file
    round-trips through.  It is plain data (picklable, no callables), so
    traces survive the process-pool replicate path unchanged.
    """

    meta: Dict[str, object] = field(default_factory=dict)
    events: List[ObsEvent] = field(default_factory=list)
    spans: List[SpanRecord] = field(default_factory=list)

    # -- export / import -------------------------------------------------
    def write_jsonl(self, path) -> int:
        """Write the trace as JSON Lines; returns the number of lines.

        A path ending in ``.gz`` is gzip-compressed transparently (and
        :meth:`read_jsonl` detects compression by content, not name).
        """
        lines = [
            json.dumps(
                {
                    "type": "meta",
                    "schema": TRACE_SCHEMA,
                    "version": TRACE_FORMAT_VERSION,
                    **self.meta,
                },
                default=_json_default,
            )
        ]
        lines.extend(
            json.dumps(e.to_json_obj(), default=_json_default)
            for e in self.events
        )
        lines.extend(
            json.dumps(s.to_json_obj(), default=_json_default)
            for s in self.spans
        )
        text = "\n".join(lines) + "\n"
        if str(path).endswith(".gz"):
            with gzip.open(path, "wt", encoding="utf-8") as fh:
                fh.write(text)
        else:
            Path(path).write_text(text)
        return len(lines)

    @classmethod
    def read_jsonl(cls, path) -> "RunTrace":
        """Parse a trace written by :meth:`write_jsonl`.

        Accepts plain or gzip-compressed files (detected by the gzip
        magic bytes, so ``.jsonl.gz`` artifacts need no special flag).
        Forward compatibility: an unknown schema stamp or unknown line
        type warns and is skipped rather than raising, so traces written
        by a newer ``repro.obs`` still load their known parts.
        """
        raw = Path(path).read_bytes()
        if raw[:2] == _GZIP_MAGIC:
            raw = gzip.decompress(raw)
        trace = cls()
        for line_no, line in enumerate(raw.decode("utf-8").splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON: {exc}") from None
            kind = obj.get("type")
            if kind == "meta":
                schema = obj.get("schema")
                if schema is not None and schema != TRACE_SCHEMA:
                    warnings.warn(
                        f"{path}: trace schema {schema!r} is newer than "
                        f"{TRACE_SCHEMA!r}; reading known fields only",
                        stacklevel=2,
                    )
                meta = dict(obj)
                meta.pop("type", None)
                meta.pop("schema", None)
                meta.pop("version", None)
                trace.meta.update(meta)
            elif kind == "event":
                trace.events.append(ObsEvent.from_json_obj(obj))
            elif kind == "span":
                trace.spans.append(SpanRecord.from_json_obj(obj))
            else:
                warnings.warn(
                    f"{path}:{line_no}: unknown line type {kind!r} skipped "
                    "(written by a newer repro.obs?)",
                    stacklevel=2,
                )
        return trace

    # -- reconstruction helpers -----------------------------------------
    def events_of(self, *kinds: str) -> List[ObsEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def counts_by_subsystem(self) -> Dict[str, Dict[str, int]]:
        """``{subsystem: {kind: count}}`` in first-seen order."""
        out: Dict[str, Dict[str, int]] = {}
        for e in self.events:
            out.setdefault(e.subsystem, {})
            out[e.subsystem][e.kind] = out[e.subsystem].get(e.kind, 0) + 1
        return out

    def series_timeline(self) -> Dict[int, List[ObsEvent]]:
        """Per-series round outcomes: ``cid -> [path.form/path.fail ...]``
        in emission order (the per-series round timeline)."""
        timeline: Dict[int, List[ObsEvent]] = {}
        for e in self.events:
            if e.kind in ("path.form", "path.fail") and e.cid is not None:
                timeline.setdefault(int(e.cid), []).append(e)
        return timeline

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: count, cumulative wall seconds,
        cumulative sim minutes."""
        out: Dict[str, Dict[str, float]] = {}
        for s in self.spans:
            agg = out.setdefault(
                s.name, {"count": 0.0, "wall": 0.0, "sim": 0.0}
            )
            agg["count"] += 1
            agg["wall"] += s.wall
            agg["sim"] += s.t1 - s.t0
        return out

    def time_range(self) -> "tuple[float, float]":
        """(first, last) simulation timestamp across events and spans."""
        times = [e.t for e in self.events]
        times.extend(s.t0 for s in self.spans)
        times.extend(s.t1 for s in self.spans)
        if not times:
            return (0.0, 0.0)
        return (min(times), max(times))
