"""Unified observability layer: structured events, spans, metrics.

Three cooperating primitives, each usable on its own:

- :mod:`repro.obs.events` — a typed, structured **event bus**
  (:class:`EventBus`) recording per-run protocol events (path formation
  and reformation, hop forwarding, probe sweeps/timeouts/retries, churn
  join/leave, escrow deposit/release/abort, bank denials, fault
  injection, settlement), each stamped with simulation time, series
  ``cid``, round index and node ids, plus a JSONL exporter/importer
  (:class:`RunTrace`).
- :mod:`repro.obs.tracing` — a nested **span tracer**
  (:class:`SpanTracer`) recording sim-time intervals and wall-clock
  durations around path building, SPNE decision evaluation, probing
  sweeps and settlement.  :data:`NULL_TRACER` is the zero-allocation
  disabled path: its ``span()`` returns one shared no-op context
  manager, so instrumented call sites cost a method call and nothing
  else when observability is off.
- :mod:`repro.obs.metrics` — a **metrics registry**
  (:class:`MetricsRegistry`): named counters/gauges/histograms with
  label support and Prometheus text-format / JSON exporters.  The
  process-wide :data:`repro.sim.monitoring.PERF` counters and the
  per-run ``DegradationCounters`` keep their plain attribute-increment
  APIs and are absorbed into the registry as registered instruments via
  :meth:`MetricsRegistry.register_counters`.

Determinism contract: nothing in this package ever touches
:class:`repro.sim.rng.RandomStreams` or draws randomness — with
observability disabled (the default) a run is bit-identical to an
uninstrumented one, and enabling it changes timings only, never
decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.obs.events import TRACE_SCHEMA, EventBus, ObsEvent, RunTrace
from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.promtext import parse_prometheus
from repro.obs.tracing import NULL_TRACER, NullTracer, SpanRecord, SpanTracer

__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "HistogramMetric",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsConfig",
    "ObsEvent",
    "Observability",
    "RunTrace",
    "SpanRecord",
    "SpanTracer",
    "TRACE_SCHEMA",
    "parse_prometheus",
]


@dataclass(frozen=True)
class ObsConfig:
    """What to record when observability is enabled.

    The all-default instance records everything; ``hop_events=False``
    silences the chattiest channel (one ``hop.forward`` event per
    forwarding instance) while keeping the round-level events.
    """

    events: bool = True
    spans: bool = True
    hop_events: bool = True

    def any_enabled(self) -> bool:
        return self.events or self.spans


@dataclass
class Observability:
    """One run's bundle of live instrumentation sinks.

    Built by the scenario harness when tracing is requested and threaded
    into the subsystems (path builder, prober, bank, fault injector).
    ``bus`` is ``None`` when events are disabled; ``tracer`` degrades to
    :data:`NULL_TRACER` when spans are disabled, so consumers can always
    call ``obs.tracer.span(...)`` unconditionally.
    """

    bus: Optional[EventBus]
    tracer: SpanTracer
    config: ObsConfig

    @classmethod
    def create(
        cls,
        clock: Optional[Callable[[], float]] = None,
        config: Optional[ObsConfig] = None,
    ) -> "Observability":
        cfg = config if config is not None else ObsConfig()
        bus = EventBus(clock=clock) if cfg.events else None
        tracer = SpanTracer(clock=clock) if cfg.spans else NULL_TRACER
        return cls(bus=bus, tracer=tracer, config=cfg)

    def run_trace(self, meta: Optional[Mapping[str, object]] = None) -> RunTrace:
        """Freeze the collected events and spans into a portable trace."""
        return RunTrace(
            meta=dict(meta or {}),
            events=list(self.bus.events) if self.bus is not None else [],
            spans=list(self.tracer.spans),
        )
