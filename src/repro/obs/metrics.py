"""Metrics registry: named counters, gauges and histograms with labels.

Naming follows the Prometheus conventions: instrument names match
``[a-zA-Z_:][a-zA-Z0-9_:]*`` and are prefixed ``repro_``; counters end
in ``_total``; label names match ``[a-zA-Z_][a-zA-Z0-9_]*``.  One
instrument owns all of its label children: ``registry.counter("x_total",
help).labels(phase="setup").inc()``; the label-less child is the
instrument itself.

The registry holds plain data only — values, help strings, bucket
bounds — never callables, so a populated :class:`MetricsRegistry`
pickles cleanly across the ``REPRO_JOBS`` process-pool replicate path.
The process-wide ``PERF`` counters and the per-run
``DegradationCounters`` keep their attribute-increment hot-path APIs;
:meth:`MetricsRegistry.register_counters` materialises a snapshot of
either into registered instruments at collection time.

Exporters: :meth:`MetricsRegistry.to_prometheus` (text exposition
format 0.0.4) and :meth:`MetricsRegistry.to_json`.
"""

from __future__ import annotations

import json
import re
import warnings
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Schema stamp on the JSON export.  :meth:`MetricsRegistry.from_json`
#: accepts stamped and legacy (bare-dict) documents, and warns — never
#: crashes — on unknown stamps, instrument types, or extra fields, so
#: the fleet store can ingest artifacts from newer/older writers.
METRICS_SCHEMA = "repro-obs/metrics-v1"

#: Sorted-tuple form of a label set; () is the label-less child.
LabelKey = Tuple[Tuple[str, str], ...]


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    for key in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared behaviour: a name, a help string, and per-label-set state."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _validate_name(name)
        self.help = help

    def _samples(self) -> "List[Tuple[str, LabelKey, float]]":
        """(suffix, label_key, value) triples for the text exporter."""
        raise NotImplementedError

    def _json_obj(self) -> Dict[str, object]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically non-decreasing count, optionally labelled."""

    metric_type = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def labels(self, **labels: object) -> "_CounterChild":
        return _CounterChild(self, _label_key(labels))

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _samples(self):
        items = sorted(self._values.items()) or [((), 0.0)]
        return [("", key, value) for key, value in items]

    def _json_obj(self):
        return {
            "type": self.metric_type,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class _CounterChild:
    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelKey):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        values = self._counter._values
        values[self._key] = values.get(self._key, 0.0) + amount


class Gauge(_Instrument):
    """A value that can go up and down, optionally labelled."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def labels(self, **labels: object) -> "_GaugeChild":
        return _GaugeChild(self, _label_key(labels))

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _samples(self):
        items = sorted(self._values.items()) or [((), 0.0)]
        return [("", key, value) for key, value in items]

    def _json_obj(self):
        return {
            "type": self.metric_type,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


#: Default histogram buckets, tuned for sub-second wall-clock spans.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class HistogramMetric(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics), labelled.

    Named with the ``Metric`` suffix to avoid clashing with the
    streaming :class:`repro.sim.monitoring.Histogram`.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        # key -> (per-bucket counts, +Inf count, sum)
        self._counts: Dict[LabelKey, List[float]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0.0] * len(self.buckets))
        idx = bisect_left(self.buckets, value)
        if idx < len(counts):
            counts[idx] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0.0) + 1

    def count(self, **labels: object) -> float:
        return self._totals.get(_label_key(labels), 0.0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def _samples(self):
        samples: List[Tuple[str, LabelKey, float]] = []
        for key in sorted(self._counts):
            cumulative = 0.0
            for bound, count in zip(self.buckets, self._counts[key]):
                cumulative += count
                samples.append(
                    ("_bucket", key + (("le", _format_value(bound)),), cumulative)
                )
            samples.append(
                ("_bucket", key + (("le", "+Inf"),), self._totals[key])
            )
            samples.append(("_sum", key, self._sums[key]))
            samples.append(("_count", key, self._totals[key]))
        return samples

    def _json_obj(self):
        return {
            "type": self.metric_type,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": dict(key),
                    "counts": list(self._counts[key]),
                    "sum": self._sums[key],
                    "count": self._totals[key],
                }
                for key in sorted(self._counts)
            ],
        }


class MetricsRegistry:
    """Namespace of instruments with shared exporters.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing name returns the existing instrument (a type
    mismatch raises).
    """

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type}, not {cls.metric_type}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramMetric:
        return self._get_or_create(
            HistogramMetric, name, help, buckets=buckets
        )

    # -- facade absorption ------------------------------------------------
    def register_counters(
        self,
        prefix: str,
        snapshot: Mapping[str, float],
        help: str = "",
    ) -> List[Counter]:
        """Materialise a counter snapshot (e.g. ``PERF.snapshot()`` or
        ``DegradationCounters.snapshot()``) as one ``_total`` counter per
        field.  The source object keeps its attribute API — this absorbs
        its *values* into the registry at collection time."""
        created = []
        for field_name, value in snapshot.items():
            counter = self.counter(f"{prefix}_{field_name}_total", help)
            counter._values[()] = float(value)
            created.append(counter)
        return created

    def register_gauges(
        self,
        prefix: str,
        snapshot: Mapping[str, float],
        help: str = "",
    ) -> List[Gauge]:
        """Materialise a mapping of scalar readings as gauges."""
        created = []
        for field_name, value in snapshot.items():
            gauge = self.gauge(f"{prefix}_{field_name}", help)
            gauge.set(float(value))
            created.append(gauge)
        return created

    # -- exporters --------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4), newline-terminated."""
        lines: List[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.metric_type}")
            for suffix, key, value in instrument._samples():
                lines.append(
                    f"{name}{suffix}{_format_labels(key)} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "schema": METRICS_SCHEMA,
                "metrics": {
                    name: self._instruments[name]._json_obj()
                    for name in self.names()
                },
            },
            indent=indent,
            sort_keys=True,
        )

    # -- importer ---------------------------------------------------------
    @classmethod
    def from_json(cls, document: "str | Mapping[str, object]") -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_json` document.

        Accepts the stamped ``repro-obs/metrics-v1`` envelope or the
        legacy bare ``{name: instrument}`` dict.  Unknown schema stamps,
        instrument types and extra per-instrument fields warn and are
        skipped (forward compatibility).
        """
        obj = json.loads(document) if isinstance(document, str) else dict(document)
        if "schema" in obj or "metrics" in obj:
            schema = obj.get("schema")
            if schema is not None and schema != METRICS_SCHEMA:
                warnings.warn(
                    f"metrics schema {schema!r} is newer than "
                    f"{METRICS_SCHEMA!r}; reading known fields only",
                    stacklevel=2,
                )
            for key in obj:
                if key not in ("schema", "metrics"):
                    warnings.warn(
                        f"unknown metrics-export field {key!r} ignored",
                        stacklevel=2,
                    )
            instruments = obj.get("metrics", {})
        else:
            instruments = obj
        registry = cls()
        for name in sorted(instruments):
            spec = instruments[name]
            mtype = spec.get("type")
            help_text = str(spec.get("help", ""))
            if mtype == "counter":
                inst = registry.counter(name, help_text)
                for entry in spec.get("values", []):
                    key = _label_key(entry.get("labels", {}))
                    inst._values[key] = float(entry["value"])
            elif mtype == "gauge":
                inst = registry.gauge(name, help_text)
                for entry in spec.get("values", []):
                    key = _label_key(entry.get("labels", {}))
                    inst._values[key] = float(entry["value"])
            elif mtype == "histogram":
                hist = registry.histogram(
                    name, help_text, buckets=spec.get("buckets", DEFAULT_BUCKETS)
                )
                for entry in spec.get("values", []):
                    key = _label_key(entry.get("labels", {}))
                    hist._counts[key] = [float(c) for c in entry["counts"]]
                    hist._sums[key] = float(entry["sum"])
                    hist._totals[key] = float(entry["count"])
            else:
                warnings.warn(
                    f"unknown instrument type {mtype!r} for {name!r} skipped",
                    stacklevel=2,
                )
        return registry
