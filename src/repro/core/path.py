"""Forwarding paths and their bookkeeping.

A :class:`Path` is one realised round of a connection series: the ordered
forwarder list between initiator and responder.  A node may appear more
than once (each appearance is a separate *forwarding instance*, §2.2 pays
``P_f`` per instance).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class PathFailure(Exception):
    """Raised when a round's path could not be established.

    ``reformations`` counts how many partial paths were torn down before
    giving up (each tear-down is a path reformation event, the quantity
    Proposition 1 reasons about).
    """

    def __init__(self, reason: str, reformations: int = 0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.reformations = reformations


@dataclass(frozen=True)
class Path:
    """One established forwarding path ``I -> F1 -> ... -> Fm -> R``."""

    cid: int
    round_index: int
    initiator: int
    responder: int
    #: Forwarders in hop order (excludes initiator and responder).
    forwarders: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.initiator == self.responder:
            raise ValueError("initiator and responder must differ")
        if self.round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {self.round_index}")
        # The initiator MAY appear as a forwarder: other nodes do not know
        # it initiated (Crowds-style deniability), so they may route
        # through it.  The responder cannot — selecting it ends the path.
        if self.responder in self.forwarders:
            raise ValueError("responder cannot appear as a forwarder")

    @property
    def length(self) -> int:
        """Path length ``L`` = number of forwarding hops (forwarder count,
        counting repeats)."""
        return len(self.forwarders)

    @property
    def nodes(self) -> Tuple[int, ...]:
        """Full hop sequence including endpoints."""
        return (self.initiator, *self.forwarders, self.responder)

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """All directed edges on the path, endpoints included."""
        seq = self.nodes
        return list(zip(seq[:-1], seq[1:]))

    @property
    def forwarder_set(self) -> frozenset:
        """Distinct forwarders on this round."""
        return frozenset(self.forwarders)

    def forwarding_instances(self) -> Dict[int, int]:
        """Forwarding-instance count per forwarder (repeats counted)."""
        return dict(Counter(self.forwarders))

    def hop_records(self) -> List[Tuple[int, int, int]]:
        """(predecessor, node, successor) triples for every forwarder
        position — exactly what each forwarder stores in its history
        profile (Table 1)."""
        seq = self.nodes
        return [
            (seq[i - 1], seq[i], seq[i + 1]) for i in range(1, len(seq) - 1)
        ]


@dataclass
class SeriesLog:
    """Accumulates the rounds of one connection series ``pi``."""

    cid: int
    initiator: int
    responder: int
    paths: List[Path] = field(default_factory=list)
    failed_rounds: int = 0
    reformations: int = 0

    def add(self, path: Path) -> None:
        if path.cid != self.cid:
            raise ValueError(f"path cid {path.cid} does not match series {self.cid}")
        self.paths.append(path)

    @property
    def rounds_completed(self) -> int:
        return len(self.paths)

    def union_forwarder_set(self) -> frozenset:
        """``Q = union of F_i`` over all rounds (§2.1) — the quantity the
        mechanism minimises."""
        out: set = set()
        for p in self.paths:
            out |= p.forwarder_set
        return frozenset(out)

    def total_instances(self) -> Dict[int, int]:
        """Forwarding instances per forwarder across the whole series."""
        totals: Counter = Counter()
        for p in self.paths:
            totals.update(p.forwarding_instances())
        return dict(totals)

    def average_length(self) -> float:
        """``L`` — average path length over completed rounds."""
        if not self.paths:
            return 0.0
        return sum(p.length for p in self.paths) / len(self.paths)

    def new_edges_per_round(self) -> List[int]:
        """For each round k >= 2, how many of its edges were *not* seen on
        rounds 1..k-1 — the Proposition 1 random variable ``X`` summed per
        round."""
        seen: set = set()
        out: List[int] = []
        for i, p in enumerate(self.paths):
            edges = set(p.edges)
            if i > 0:
                out.append(len(edges - seen))
            seen |= edges
        return out
