"""Quantitative anonymity analysis for Crowds-style forwarding.

The paper builds on Crowds [21] and cites the quantitative analyses of
Guan et al. [17] (effect of path length on anonymity) and Wright et al.
[26, 27] (degradation under repeated observations).  This module provides
the analytic side of those references so simulation results can be
checked against closed forms:

- :func:`prob_predecessor_is_initiator` — Reiter & Rubin's core result:
  the probability that the node immediately preceding the *first
  collaborating forwarder* is the true initiator,
  ``P = 1 - p_f * (n - c - 1) / n``
  for crowd size ``n``, ``c`` collaborators, forwarding probability
  ``p_f``.
- :func:`probable_innocence_holds` / :func:`min_crowd_size` — the
  probable-innocence regime ``P <= 1/2`` and the minimum crowd size
  ``n >= p_f / (p_f - 1/2) * (c + 1)`` that guarantees it.
- :func:`prob_collaborator_on_path` — probability that at least one
  collaborator sits on a path.
- :func:`predecessor_attack_rounds` — Wright et al.'s degradation: the
  expected number of path reformations before collaborators identify the
  initiator with the given confidence, ``O(log(1/err) * n / c)`` in the
  standard analysis; we expose the exact geometric computation.
- :func:`degree_of_anonymity` — Diaz/Serjantov normalised entropy over an
  attacker's suspicion distribution (re-exported convenience).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.utility import entropy_anonymity_degree as degree_of_anonymity

__all__ = [
    "degree_of_anonymity",
    "expected_forwarders",
    "min_crowd_size",
    "predecessor_attack_rounds",
    "prob_collaborator_on_path",
    "prob_predecessor_is_initiator",
    "probable_innocence_holds",
]


def _check(n: int, c: int, pf: float) -> None:
    if n < 1:
        raise ValueError(f"crowd size must be >= 1, got {n}")
    if not 0 <= c < n:
        raise ValueError(f"collaborators must satisfy 0 <= c < n, got c={c}, n={n}")
    if not 0.0 <= pf < 1.0:
        raise ValueError(f"forwarding probability must be in [0, 1), got {pf}")


def prob_predecessor_is_initiator(n: int, c: int, pf: float) -> float:
    """P(first collaborator's predecessor = initiator | >=1 collaborator).

    Reiter & Rubin, Crowds (ToISS 1998), Theorem 5.2's underlying
    quantity: ``1 - p_f * (n - c - 1) / n``.
    """
    _check(n, c, pf)
    return 1.0 - pf * (n - c - 1) / n


def probable_innocence_holds(n: int, c: int, pf: float) -> bool:
    """Probable innocence: the initiator looks no more likely than not,
    ``P(predecessor = initiator) <= 1/2``."""
    return prob_predecessor_is_initiator(n, c, pf) <= 0.5


def min_crowd_size(c: int, pf: float) -> int:
    """Smallest crowd size giving probable innocence with ``c``
    collaborators: ``n >= p_f / (p_f - 1/2) * (c + 1)`` (requires
    ``p_f > 1/2``)."""
    if not 0.5 < pf < 1.0:
        raise ValueError(
            f"probable innocence requires 1/2 < p_f < 1, got {pf}"
        )
    if c < 0:
        raise ValueError(f"negative collaborator count {c}")
    # Tolerance absorbs float noise in the division (e.g. 12.000000000002).
    return math.ceil(pf / (pf - 0.5) * (c + 1) - 1e-9)


def expected_forwarders(pf: float) -> float:
    """Expected number of forwarders on a Crowds path (geometric)."""
    if not 0.0 <= pf < 1.0:
        raise ValueError(f"forwarding probability must be in [0, 1), got {pf}")
    return 1.0 / (1.0 - pf)


def prob_collaborator_on_path(n: int, c: int, pf: float) -> float:
    """P(at least one collaborator appears on a path).

    Each forwarding step picks a collaborator with probability ``c/n``;
    the number of steps is geometric with continuation ``p_f``.  Summing
    the geometric series:

    ``P = (c/n) / (1 - p_f * (1 - c/n))``
    """
    _check(n, c, pf)
    if c == 0:
        return 0.0
    ratio = c / n
    return ratio / (1.0 - pf * (1.0 - ratio))


def predecessor_attack_rounds(
    n: int, c: int, pf: float, confidence: float = 0.95
) -> float:
    """Expected number of path (re)formations before the predecessor
    attack observes the initiator at least once with the given
    confidence.

    Per reformation, the initiator is exposed to a collaborator's log
    with probability ``q = P(collaborator first on path) ~=
    prob_collaborator_on_path * P(pred = I | collaborator)``; the number
    of reformations to a first observation is geometric, so
    ``rounds = log(1 - confidence) / log(1 - q)``.

    This is the quantity the paper's mechanism attacks indirectly: fewer
    reformations (Proposition 1) mean fewer observation opportunities.
    """
    _check(n, c, pf)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if c == 0:
        return math.inf
    q = prob_collaborator_on_path(n, c, pf) * prob_predecessor_is_initiator(n, c, pf)
    if q <= 0.0:
        return math.inf
    if q >= 1.0:
        return 1.0
    return math.log(1.0 - confidence) / math.log(1.0 - q)


def empirical_predecessor_probability(
    first_hops: Sequence[int], initiator: int
) -> float:
    """Fraction of observed first-collaborator predecessors equal to the
    initiator — the simulation-side estimator the tests compare against
    :func:`prob_predecessor_is_initiator`."""
    hops = list(first_hops)
    if not hops:
        raise ValueError("no observations")
    return sum(1 for h in hops if h == initiator) / len(hops)
