"""Benefit contracts: the initiator's payment commitment (§2.2).

When an initiator opens a connection series to a responder it commits to

- a **forwarding benefit** ``P_f`` paid to a forwarder *per forwarding
  instance*, and
- a **routing benefit** ``P_r`` shared equally by the whole forwarder set
  of the series: a forwarder with ``m`` forwarding instances earns
  ``m * P_f + P_r / ||pi||``.

The ratio ``tau = P_r / P_f`` tunes how strongly routing decisions (as
opposed to mere participation) are rewarded; the paper sweeps
``tau in {0.5, 1, 2, 4}`` and draws ``P_f`` uniformly from ``[50, 100]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper default range for the forwarding benefit draw.
PF_RANGE = (50.0, 100.0)
#: Paper's sweep values for the routing/forwarding benefit ratio.
TAU_VALUES = (0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class Contract:
    """An immutable benefit commitment attached to a connection series.

    Attributes
    ----------
    forwarding_benefit:
        ``P_f`` — per-forwarding-instance payment.
    routing_benefit:
        ``P_r`` — total shared payment, split evenly over the forwarder set.
    payload_size:
        ``b`` in the transmission-cost formula ``C^t = b*l`` (§2.4.1).
    """

    forwarding_benefit: float
    routing_benefit: float
    payload_size: float = 1.0

    def __post_init__(self) -> None:
        if self.forwarding_benefit < 0:
            raise ValueError(f"negative P_f: {self.forwarding_benefit}")
        if self.routing_benefit < 0:
            raise ValueError(f"negative P_r: {self.routing_benefit}")
        if self.payload_size <= 0:
            raise ValueError(f"payload_size must be positive: {self.payload_size}")

    @property
    def tau(self) -> float:
        """``P_r / P_f`` (inf if ``P_f == 0``)."""
        if self.forwarding_benefit == 0:
            return float("inf") if self.routing_benefit > 0 else 0.0
        return self.routing_benefit / self.forwarding_benefit

    @classmethod
    def from_tau(
        cls, forwarding_benefit: float, tau: float, payload_size: float = 1.0
    ) -> "Contract":
        """Build a contract from ``P_f`` and the ratio ``tau``."""
        if tau < 0:
            raise ValueError(f"negative tau: {tau}")
        return cls(
            forwarding_benefit=forwarding_benefit,
            routing_benefit=tau * forwarding_benefit,
            payload_size=payload_size,
        )

    def forwarder_payment(self, instances: int, forwarder_set_size: int) -> float:
        """Total owed to one forwarder: ``m*P_f + P_r/||pi||``."""
        if instances < 0:
            raise ValueError(f"negative instance count {instances}")
        if forwarder_set_size < 1:
            raise ValueError(f"forwarder set must be non-empty, got {forwarder_set_size}")
        return instances * self.forwarding_benefit + (
            self.routing_benefit / forwarder_set_size
        )

    def total_cost(self, total_instances: int) -> float:
        """The initiator's total outlay for the series (§2.2, eq. 2 cost term)."""
        if total_instances < 0:
            raise ValueError(f"negative instance count {total_instances}")
        return total_instances * self.forwarding_benefit + self.routing_benefit


def draw_contract(
    rng: np.random.Generator,
    tau: float,
    pf_range: "tuple[float, float]" = PF_RANGE,
    payload_size: float = 1.0,
) -> Contract:
    """Draw ``P_f`` uniformly from ``pf_range`` (paper: [50, 100]) at ratio tau."""
    lo, hi = pf_range
    if not 0 <= lo <= hi:
        raise ValueError(f"invalid P_f range {pf_range}")
    pf = float(rng.uniform(lo, hi))
    return Contract.from_tau(pf, tau, payload_size=payload_size)
