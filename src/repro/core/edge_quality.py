"""Edge quality: ``q(s, v) = w_s * sigma(s, v) + w_a * alpha(v)`` (§2.3).

The two weights trade off *past history* (selectivity — reuse edges the
series already used, shrinking the forwarder set) against *future
availability* (pick neighbours likely to still be online for the next
recurring connection).  The paper requires ``w_s + w_a = 1`` and uses
``w_s = w_a = 0.5`` unless stated otherwise; the edge into the responder
always has quality 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.history import HistoryProfile
from repro.network.node import PeerNode


@dataclass(frozen=True)
class QualityWeights:
    """Normalised (w_s, w_a) pair; enforces ``w_s + w_a == 1``."""

    selectivity: float = 0.5
    availability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0 or not 0.0 <= self.availability <= 1.0:
            raise ValueError(
                f"weights must be in [0,1]: ({self.selectivity}, {self.availability})"
            )
        if abs(self.selectivity + self.availability - 1.0) > 1e-9:
            raise ValueError(
                f"weights must sum to 1, got "
                f"{self.selectivity} + {self.availability}"
            )


def edge_quality(
    node: PeerNode,
    neighbor_id: int,
    history: HistoryProfile,
    cid: int,
    round_index: int,
    weights: QualityWeights = QualityWeights(),
    predecessor: Optional[int] = None,
    responder: Optional[int] = None,
    availability: Optional[float] = None,
) -> float:
    """Quality of the outgoing edge ``(node, neighbor_id)``.

    Combines the §2.3 selectivity (history of this series) and the probed
    availability estimate.  If ``neighbor_id`` is the responder the edge
    quality is 1 by definition ("the edge quality of the last edge in the
    path is always 1 because it ends in R").

    ``availability`` lets callers that score a whole candidate set pass
    the precomputed ``node.availability_vector()[neighbor_id]`` — the
    per-call sum over the neighbour set is the routing hot path.

    The result is in ``[0, 1]`` because both components are and the
    weights are convex.
    """
    if responder is not None and neighbor_id == responder:
        return 1.0
    sigma = history.selectivity(
        cid, successor=neighbor_id, round_index=round_index, predecessor=predecessor
    )
    alpha = availability if availability is not None else node.availability(neighbor_id)
    q = weights.selectivity * sigma + weights.availability * alpha
    # Guard against float drift; both terms are provably in [0, 1].
    return min(1.0, max(0.0, q))
