"""Array-backed scoring kernels: the ``numpy`` routing backend.

The scalar strategies in :mod:`repro.core.routing` walk Python data
structures edge by edge — dict lookups, per-candidate ``bisect`` calls,
a recursive backward induction.  This module re-expresses the same
decisions over flat arrays so the per-candidate work becomes a handful
of vectorised kernels:

- :class:`WorldArrays` — a struct-of-arrays (CSR) view of the overlay
  topology plus per-edge availability, shared by every round a
  :class:`~repro.core.protocol.PathBuilder` builds.  It is kept
  *incrementally* consistent: nodes and the overlay expose monotonic
  version counters (``neighbors_version``, ``availability_version``,
  ``liveness_version``) and the arrays are rebuilt or patched only when
  a remembered version no longer matches.
- :class:`KernelView` — the per-:class:`ForwardingContext` slice of
  derived state: the per-edge quality vector ``q_flat`` for the current
  ``(cid, round)``, liveness masks, and the level-batched SPNE value
  tables for Utility Model II.
- ``KernelView.decide_model1`` / ``decide_model2`` — batched
  replacements for the scalar ``select_next_hop`` bodies.

**Bit-identity contract.**  The numpy backend must make *exactly* the
routing decisions the scalar backend makes — same hop choices, same
paths, same ``ScenarioResult`` — so either backend can serve as the
reference for the other.  Three rules keep the float streams and the
RNG stream aligned:

1. *Same scalar inputs.*  Availability values are read from each node's
   cached ``availability_vector()`` normalisation (never re-summed with
   numpy's pairwise summation); selectivity hit counts come from the
   same sorted-round-index bisects the scalar path uses
   (:meth:`HistoryProfile.selectivity_hits_block`).
2. *Same float expressions.*  Every arithmetic step mirrors the scalar
   expression tree op for op (``w_s*sigma + w_a*alpha`` then clamp;
   ``(q + tail_sum + 1.0) / (tail_n + 2)``; …) — numpy's float64 ufuncs
   round identically to CPython floats, so equal expressions give equal
   bits.
3. *Same RNG order.*  The only RNG consumer on the scoring path is the
   lazy per-link bandwidth draw inside ``CostModel.decision_cost``.
   Cost vectors are therefore computed by a plain Python loop over the
   candidate ids in scalar candidate order, only for top-level
   decisions — never eagerly, never batched — so first-use draws happen
   at exactly the same points of the run.

**Backward induction as edge states.**  A memo state of the scalar
Model II recursion is ``(node, predecessor, depth)``; since the
predecessor is always the node that forwarded here, the reachable
states at each depth are exactly the *directed edges* of the overlay.
The induction therefore runs level-synchronously over one flat array of
per-(state, child) entries: gather the previous level's values through
``st_child_edge``, form candidate means, and reduce per state with
``np.maximum.reduceat`` (first-maximum index via a positional
``np.minimum.reduceat``), reproducing the scalar loop's strict-``>``
first-winner tie behaviour.

**Snapshot semantics.**  Quality, availability and topology are
snapshotted per ``(context, round)`` — the same contract the scalar
caches document (histories commit after the round; probe counters
advance between rounds).  Liveness is snapshotted per formation
*attempt*: ``ForwardingContext.begin_attempt`` observes
``Overlay.liveness_version`` so a mid-round crash (fault injection)
refreshes the candidate world for the next attempt on both backends.

Position-aware selectivity conditions ``sigma`` on the upstream hop,
which breaks the one-value-per-edge layout; contexts with
``position_aware_selectivity=True`` stay on the scalar path (the
dispatch sites in :mod:`repro.core.routing` guard this).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.monitoring import PERF

if TYPE_CHECKING:  # typing only: no runtime dependency on the upper layers
    from repro.core.routing import ForwardingContext
    from repro.network.overlay import Overlay


#: Recognised backend names, in preference-documentation order.
BACKENDS: Tuple[str, ...] = ("python", "numpy")

#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV = "REPRO_BACKEND"


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend, else raise ``ValueError``."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {list(BACKENDS)}"
        )
    return name


def default_backend() -> str:
    """The process-wide default backend: ``$REPRO_BACKEND`` or ``python``.

    The scalar backend stays the default — it is the executable
    specification; the numpy backend is the performance twin that the
    differential suite holds bit-identical to it.
    """
    value = os.environ.get(BACKEND_ENV, "").strip()
    if not value:
        return "python"
    return validate_backend(value)


class WorldArrays:
    """Struct-of-arrays view of the overlay, shared across rounds.

    Layout (all arrays are index-aligned on the *directed edge* axis;
    ``indptr`` is indexed by node id, so edge ``e`` with
    ``indptr[u] <= e < indptr[u+1]`` is the edge ``u -> nbr_flat[e]``,
    neighbours sorted ascending — the scalar candidate order):

    ``indptr``         CSR row pointers per node id.
    ``nbr_flat``       Edge head (neighbour id) per edge.
    ``owner_flat``     Edge tail (owning node id) per edge.
    ``alpha_flat``     Cached availability ``alpha(owner -> head)``.

    SPNE structure (state ``e`` = edge, i.e. "standing at ``head(e)``
    having arrived from ``owner(e)``"; its children are the CSR entries
    of ``head(e)``):

    ``st_counts``         Children per state.
    ``st_red_idx``        Segment starts for ``reduceat`` (clipped).
    ``st_child_edge``     Flat child -> edge index gather table.
    ``st_child_not_pred`` Per child: head differs from the state's
                          predecessor (the no-backtracking filter).
    ``child_pos``         ``arange`` over the flat child axis.

    Invalidation: :meth:`ensure_fresh` rebuilds the topology (and bumps
    ``generation``) when any node's ``neighbors_version`` moved or the
    node population changed, and re-patches per-node ``alpha_flat``
    slices whose ``availability_version`` moved.  Liveness is *not*
    stored here — it changes mid-round under fault injection and is
    masked per :class:`KernelView`.
    """

    def __init__(self, overlay: "Overlay") -> None:
        self.overlay = overlay
        #: Bumped on every topology rebuild; views compare against it.
        self.generation = 0
        self.size = 0
        self.n_edges = 0
        self.indptr: Optional[np.ndarray] = None
        self.nbr_flat = np.zeros(0, dtype=np.int64)
        self.owner_flat = np.zeros(0, dtype=np.int64)
        self.alpha_flat = np.zeros(0, dtype=np.float64)
        self.nbr_lists: Dict[int, List[int]] = {}
        self.st_counts = np.zeros(0, dtype=np.int64)
        self.st_red_idx = np.zeros(0, dtype=np.int64)
        self.st_child_edge = np.zeros(0, dtype=np.int64)
        self.st_child_not_pred = np.zeros(0, dtype=bool)
        self.child_pos = np.zeros(0, dtype=np.int64)
        self._nbr_versions: Dict[int, int] = {}
        self._alpha_versions: Dict[int, int] = {}
        self._perf = PERF.counters

    # -- freshness ---------------------------------------------------------
    def ensure_fresh(self) -> None:
        """Bring topology and availability arrays up to date (cheap when
        nothing changed: one version compare per node)."""
        if self._topology_stale():
            self._rebuild_topology()
        self._refresh_alpha()

    def _topology_stale(self) -> bool:
        if self.indptr is None:
            return True
        nodes = self.overlay.nodes
        vers = self._nbr_versions
        if len(nodes) != len(vers):
            return True
        get = vers.get
        for nid, node in nodes.items():
            if get(nid) != node.neighbors_version:
                return True
        return False

    def _rebuild_topology(self) -> None:
        nodes = self.overlay.nodes
        ids = sorted(nodes)
        nbr_lists: Dict[int, List[int]] = {}
        vers: Dict[int, int] = {}
        max_ref = ids[-1] if ids else -1
        for nid in ids:
            node = nodes[nid]
            lst = sorted(node.neighbors)
            nbr_lists[nid] = lst
            vers[nid] = node.neighbors_version
            if lst and lst[-1] > max_ref:
                max_ref = lst[-1]
        size = max_ref + 1
        indptr = np.zeros(size + 1, dtype=np.int64)
        for nid, lst in nbr_lists.items():
            indptr[nid + 1] = len(lst)
        np.cumsum(indptr, out=indptr)
        n_edges = int(indptr[-1]) if size else 0
        # nbr_lists iterates in ascending-id insertion order and absent
        # ids contribute empty segments, so concatenating the lists IS
        # the CSR payload.
        nbr_flat = np.fromiter(
            (j for lst in nbr_lists.values() for j in lst),
            dtype=np.int64,
            count=n_edges,
        )
        deg = np.diff(indptr)
        owner_flat = np.repeat(np.arange(size, dtype=np.int64), deg)

        self.size = size
        self.n_edges = n_edges
        self.indptr = indptr
        self.nbr_flat = nbr_flat
        self.owner_flat = owner_flat
        self.nbr_lists = nbr_lists
        self._nbr_versions = vers
        self._build_state_structure()
        # Alpha slices are laid out per edge; a new layout means every
        # slice must be re-read.
        self.alpha_flat = np.zeros(n_edges, dtype=np.float64)
        self._alpha_versions = {}
        self.generation += 1
        self._perf.array_rebuilds += 1

    def _build_state_structure(self) -> None:
        """Derive the SPNE gather tables from the CSR (pure topology)."""
        assert self.indptr is not None
        if self.n_edges == 0:
            self.st_counts = np.zeros(0, dtype=np.int64)
            self.st_red_idx = np.zeros(0, dtype=np.int64)
            self.st_child_edge = np.zeros(0, dtype=np.int64)
            self.st_child_not_pred = np.zeros(0, dtype=bool)
            self.child_pos = np.zeros(0, dtype=np.int64)
            return
        deg = np.diff(self.indptr)
        head = self.nbr_flat
        st_counts = deg[head]
        offsets = np.concatenate(
            ([0], np.cumsum(st_counts))
        ).astype(np.int64, copy=False)
        total = int(offsets[-1])
        self.st_counts = st_counts
        # reduceat needs in-bounds starts; empty trailing segments are
        # clipped here and their garbage results overwritten by the dead
        # mask downstream.
        self.st_red_idx = np.minimum(offsets[:-1], max(total - 1, 0))
        if total == 0:
            self.st_child_edge = np.zeros(0, dtype=np.int64)
            self.st_child_not_pred = np.zeros(0, dtype=bool)
            self.child_pos = np.zeros(0, dtype=np.int64)
            return
        # Segmented arange: child c of state e maps to CSR entry
        # indptr[head(e)] + (c's rank within the segment).
        pos = np.arange(total, dtype=np.int64)
        rank = pos - np.repeat(offsets[:-1], st_counts)
        child_edge = np.repeat(self.indptr[head], st_counts) + rank
        child_ids = self.nbr_flat[child_edge]
        pred_rep = np.repeat(self.owner_flat, st_counts)
        self.st_child_edge = child_edge
        self.st_child_not_pred = child_ids != pred_rep
        self.child_pos = pos

    def _refresh_alpha(self) -> None:
        nodes = self.overlay.nodes
        avers = self._alpha_versions
        starts = self.indptr.tolist()
        alpha = self.alpha_flat
        touched = False
        for nid, lst in self.nbr_lists.items():
            node = nodes[nid]
            ver = node.availability_version
            if avers.get(nid) == ver:
                continue
            if lst:
                # Read the node's own cached normalisation: these are the
                # exact floats the scalar backend scores with (re-summing
                # in numpy would round differently).
                av = node.availability_vector()
                start = starts[nid]
                alpha[start : start + len(lst)] = [av[j] for j in lst]
            avers[nid] = ver
            touched = True
        if touched:
            self._perf.array_rebuilds += 1


class KernelView:
    """Per-context derived arrays + the batched decision procedures.

    Owns three epochs of derived state, each invalidated independently:

    - quality (``q_flat``): per ``(cid, round_index)`` — rebuilt lazily
      per node on the next decision after the key changes (Model I
      touches only the deciding node's slice; Model II fills all);
    - liveness (``valid0_flat``/``st_valid``/``st_dead`` and the cost
      cache): per ``Overlay.liveness_version``;
    - SPNE value tables (``_levels_*``): dependent on both, cleared when
      either moves.
    """

    __slots__ = (
        "world",
        "context",
        "q_flat",
        "valid0_flat",
        "st_valid",
        "st_dead",
        "_q_built",
        "_q_all",
        "_q_key",
        "_liveness_stamp",
        "_levels_sum",
        "_levels_n",
        "_cost_cache",
        "_world_gen",
        "_perf",
    )

    def __init__(self, world: WorldArrays, context: "ForwardingContext") -> None:
        self.world = world
        self.context = context
        self._perf = context.perf
        world.ensure_fresh()
        self._world_gen = world.generation
        self._reset_for_world()

    def _reset_for_world(self) -> None:
        world = self.world
        self.q_flat = np.zeros(world.n_edges, dtype=np.float64)
        self._q_built = np.zeros(world.size, dtype=bool)
        self._q_all = world.n_edges == 0
        self._q_key: Optional[Tuple[int, int]] = None
        self._liveness_stamp: Optional[int] = None
        self.valid0_flat = np.zeros(0, dtype=bool)
        self.st_valid: Optional[np.ndarray] = None
        self.st_dead: Optional[np.ndarray] = None
        self._levels_sum: Optional[List[np.ndarray]] = None
        self._levels_n: Optional[List[np.ndarray]] = None
        self._cost_cache: Dict[Tuple[int, Optional[int]], np.ndarray] = {}

    # -- epoch synchronisation --------------------------------------------
    def _sync(self, node_id: int) -> None:
        """Cheap per-decision staleness checks (two compares on the hot
        path; the expensive rebuilds only run when an epoch moved)."""
        world = self.world
        context = self.context
        if world.indptr is None or node_id + 1 >= world.indptr.size:
            world.ensure_fresh()
        key = (context.cid, context.round_index)
        if key != self._q_key:
            # New round (or a test mutated the context in place): probe
            # counters and neighbour sets may have advanced since the
            # last round — re-validate the shared arrays, then drop the
            # round-scoped quality state.
            world.ensure_fresh()
            if world.generation != self._world_gen:
                self._world_gen = world.generation
                self._reset_for_world()
            else:
                self._q_built[:] = False
                self._q_all = world.n_edges == 0
                self._levels_sum = None
                self._levels_n = None
            self._q_key = key
        if world.generation != self._world_gen:
            self._world_gen = world.generation
            self._reset_for_world()
            self._q_key = key
        stamp = context.overlay.liveness_version
        if stamp != self._liveness_stamp:
            self._rebuild_liveness(stamp)

    def _rebuild_liveness(self, stamp: int) -> None:
        world = self.world
        context = self.context
        nbr = world.nbr_flat
        online = context.overlay.online_mask(world.size)
        self.valid0_flat = online[nbr] & (nbr != context.responder)
        # State-level (SPNE) validity is derived lazily: Model I
        # decisions never touch it, and it is ~branching-factor times
        # larger than the edge axis.
        self.st_valid = None
        self.st_dead = None
        self._levels_sum = None
        self._levels_n = None
        self._cost_cache.clear()
        self._liveness_stamp = stamp
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(nbr.size)

    def _ensure_state_valid(self) -> None:
        if self.st_valid is not None:
            return
        world = self.world
        if world.st_child_edge.size:
            v0c = self.valid0_flat[world.st_child_edge]
            not_pred = v0c & world.st_child_not_pred
            # Scalar fallback rule, per state: exclude the predecessor
            # unless that empties the candidate set.
            has_alt = np.logical_or.reduceat(not_pred, world.st_red_idx)
            use_filtered = np.repeat(has_alt, world.st_counts)
            self.st_valid = np.where(use_filtered, not_pred, v0c)
            has_any = np.logical_or.reduceat(self.st_valid, world.st_red_idx)
            has_any[world.st_counts == 0] = False
            self.st_dead = ~has_any
        else:
            self.st_valid = np.zeros(0, dtype=bool)
            self.st_dead = np.ones(world.n_edges, dtype=bool)

    # -- quality -----------------------------------------------------------
    def _ensure_q_node(self, node_id: int) -> None:
        if self._q_all or self._q_built[node_id]:
            return
        world = self.world
        context = self.context
        start = int(world.indptr[node_id])
        end = int(world.indptr[node_id + 1])
        if start == end:
            self._q_built[node_id] = True
            return
        nbrs = world.nbr_lists[node_id]
        hits = context.histories[node_id].selectivity_hits_block(
            context.cid, nbrs, context.round_index
        )
        max_entries = context.round_index - 1
        if max_entries == 0:
            sigma = np.zeros(end - start, dtype=np.float64)
        else:
            sigma = np.minimum(
                1.0, np.asarray(hits, dtype=np.float64) / max_entries
            )
        weights = context.weights
        q = (
            weights.selectivity * sigma
            + weights.availability * world.alpha_flat[start:end]
        )
        self.q_flat[start:end] = np.minimum(1.0, np.maximum(0.0, q))
        self._q_built[node_id] = True
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += end - start
        perf.edges_scored += end - start

    def _ensure_q_all(self) -> None:
        if self._q_all:
            return
        for node_id in self.world.nbr_lists:
            self._ensure_q_node(node_id)
        self._q_all = True

    # -- SPNE value tables ---------------------------------------------------
    def _ensure_levels(self, depth: int) -> None:
        """Level-batched backward induction: ``_levels_sum[d][e]`` /
        ``_levels_n[d][e]`` are the scalar memo's ``(best_sum, best_n)``
        for state ``e`` with ``d`` edges of lookahead left."""
        world = self.world
        n_edges = world.n_edges
        self._ensure_state_valid()
        if self._levels_sum is None or self._levels_n is None:
            self._levels_sum = [np.zeros(n_edges, dtype=np.float64)]
            self._levels_n = [np.zeros(n_edges, dtype=np.int64)]
        perf = self._perf
        while len(self._levels_sum) <= depth:
            child_edge = world.st_child_edge
            if child_edge.size == 0:
                self._levels_sum.append(self._levels_sum[0])
                self._levels_n.append(self._levels_n[0])
                continue
            prev_sum = self._levels_sum[-1]
            prev_n = self._levels_n[-1]
            total_sum = self.q_flat[child_edge] + prev_sum[child_edge]
            total_n = 1 + prev_n[child_edge]
            mean = total_sum / total_n
            # Invalid children get a sentinel below every reachable mean
            # (means are >= 0; the scalar loop's initial best is -1.0).
            masked = np.where(self.st_valid, mean, -2.0)
            seg_max = np.maximum.reduceat(masked, world.st_red_idx)
            # First index attaining the segment max == the scalar loop's
            # strict-`>` first winner (children are in ascending-id,
            # i.e. scalar candidate, order).
            at_max = masked == np.repeat(seg_max, world.st_counts)
            pos = np.where(at_max, world.child_pos, child_edge.size)
            first = np.minimum.reduceat(pos, world.st_red_idx)
            sel = np.minimum(first, child_edge.size - 1)
            new_sum = total_sum[sel]
            new_n = total_n[sel]
            dead = self.st_dead
            new_sum[dead] = 0.0
            new_n[dead] = 0
            self._levels_sum.append(new_sum)
            self._levels_n.append(new_n)
            perf.kernel_calls += 1
            perf.kernel_batch_elements += int(child_edge.size)

    # -- candidates & costs -------------------------------------------------
    def _candidates(
        self, node_id: int, predecessor: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(flat edge indices, neighbour ids) of the candidate set, in
        ascending-id order — the scalar ``candidates()`` semantics."""
        world = self.world
        start = int(world.indptr[node_id])
        end = int(world.indptr[node_id + 1])
        ids = world.nbr_flat[start:end]
        valid = self.valid0_flat[start:end]
        if predecessor is not None:
            without_pred = valid & (ids != predecessor)
            if without_pred.any():
                valid = without_pred
        rel = np.nonzero(valid)[0]
        return rel + start, ids[rel]

    def _costs(
        self,
        node_id: int,
        predecessor: Optional[int],
        participation_cost: float,
        cand_ids: np.ndarray,
    ) -> np.ndarray:
        """Decision costs in candidate order.

        Deliberately a Python loop: ``decision_cost`` may draw a lazy
        per-link bandwidth sample from the shared RNG on first use, so
        the call order must match the scalar backend exactly.  Cached
        per (node, predecessor) within a liveness epoch — repeat calls
        hit the bandwidth model's own pair cache and draw nothing, so
        skipping them cannot shift the RNG stream.
        """
        key = (node_id, predecessor)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        context = self.context
        decision_cost = context.cost_model.decision_cost
        payload = context.contract.payload_size
        out = np.array(
            [
                decision_cost(participation_cost, node_id, nbr, payload)
                for nbr in cand_ids.tolist()
            ],
            dtype=np.float64,
        )
        self._cost_cache[key] = out
        return out

    # -- decisions ----------------------------------------------------------
    def decide_model1(
        self, strategy, node, predecessor: Optional[int]
    ) -> Optional[int]:
        """Batched Utility Model I: whole candidate set -> utility vector,
        arraywise argmax with the quality/id tie-break."""
        node_id = node.node_id
        self._sync(node_id)
        self._ensure_q_node(node_id)
        cand_idx, cand_ids = self._candidates(node_id, predecessor)
        if cand_ids.size == 0:
            return None
        q = self.q_flat[cand_idx]
        cost = self._costs(node_id, predecessor, node.participation_cost, cand_ids)
        if q.min() < 0.0 or q.max() > 1.0:
            raise ValueError(f"edge quality out of [0,1]: {q}")
        if cost.min() < 0:
            raise ValueError(f"negative cost {cost.min()}")
        contract = self.context.contract
        utility = (
            contract.forwarding_benefit + q * contract.routing_benefit - cost
        )
        perf = self._perf
        perf.utility_evaluations += int(cand_ids.size)
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(cand_ids.size)
        pos = _argmax_lex(utility, q)
        if float(utility[pos]) < strategy.participation_threshold:
            return None
        return int(cand_ids[pos])

    def decide_model2(
        self, strategy, node, predecessor: Optional[int]
    ) -> Optional[int]:
        """Batched Utility Model II: level-synchronous backward induction
        over edge states, then one vectorised root decision."""
        node_id = node.node_id
        self._sync(node_id)
        cand_idx, cand_ids = self._candidates(node_id, predecessor)
        if cand_ids.size == 0:
            return None
        self._ensure_q_all()
        self._ensure_levels(strategy.lookahead)
        assert self._levels_sum is not None and self._levels_n is not None
        tail_sum = self._levels_sum[strategy.lookahead][cand_idx]
        tail_n = self._levels_n[strategy.lookahead][cand_idx]
        # Terminal delivery edge (quality 1) appended, then normalised —
        # same expression tree as the scalar path_quality_through.
        path_q = (self.q_flat[cand_idx] + tail_sum + 1.0) / (tail_n + 2)
        if path_q.min() < 0.0 or path_q.max() > 1.0:
            raise ValueError(f"path quality out of [0,1]: {path_q}")
        cost = self._costs(node_id, predecessor, node.participation_cost, cand_ids)
        if cost.min() < 0:
            raise ValueError(f"negative cost {cost.min()}")
        contract = self.context.contract
        utility = (
            contract.forwarding_benefit + path_q * contract.routing_benefit - cost
        )
        perf = self._perf
        perf.utility_evaluations += int(cand_ids.size)
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(cand_ids.size)
        pos = _argmax_lex(utility, path_q)
        if float(utility[pos]) < strategy.participation_threshold:
            return None
        return int(cand_ids[pos])


def _argmax_lex(utility: np.ndarray, quality: np.ndarray) -> int:
    """First position maximising ``(utility, quality)``.

    Candidates arrive in ascending-id order, so the first position among
    full ties is the lowest id — exactly the scalar
    ``_argmax_with_quality_tiebreak`` ordering ``(u, q, -id)``.
    """
    ties = utility == utility.max()
    if int(ties.sum()) > 1:
        # Qualities are >= 0, so -1.0 can never win the masked max.
        masked_q = np.where(ties, quality, -1.0)
        ties = masked_q == masked_q.max()
    return int(np.argmax(ties))
