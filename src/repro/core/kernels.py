"""Array-backed scoring kernels: the ``numpy`` routing backend.

The scalar strategies in :mod:`repro.core.routing` walk Python data
structures edge by edge — dict lookups, per-candidate ``bisect`` calls,
a recursive backward induction.  This module re-expresses the same
decisions over flat arrays so the per-candidate work becomes a handful
of vectorised kernels:

- :class:`WorldArrays` — a struct-of-arrays (CSR) view of the overlay
  topology plus per-edge availability, shared by every round a
  :class:`~repro.core.protocol.PathBuilder` builds.  It is kept
  *incrementally* consistent: nodes and the overlay expose monotonic
  version counters (``neighbors_version``, ``availability_version``,
  ``liveness_version``) and the arrays are rebuilt or patched only when
  a remembered version no longer matches.
- :class:`BatchPlanner` — the round-level batch planner.  It keeps one
  :class:`Frontier` per open connection (derived per-``(cid, round)``
  state: the per-edge quality row, liveness masks, SPNE value tables)
  and, when any connection needs its full quality row, rebuilds *all*
  stale prepared frontiers in one stacked ``(connections, edges)``
  kernel invocation.  ``PathBuilder`` announces upcoming rounds through
  :meth:`BatchPlanner.prepare` right after committing a path, so a
  heavy-traffic scenario scores many connections' next rounds inside a
  single numpy call instead of one call per connection.
- ``BatchPlanner.decide_model1`` / ``decide_model2`` — batched
  replacements for the scalar ``select_next_hop`` bodies.

**Bit-identity contract.**  The numpy backend must make *exactly* the
routing decisions the scalar backend makes — same hop choices, same
paths, same ``ScenarioResult`` — so either backend can serve as the
reference for the other.  Three rules keep the float streams and the
RNG stream aligned:

1. *Same scalar inputs.*  Availability values are read from each node's
   cached ``availability_vector()`` normalisation (never re-summed with
   numpy's pairwise summation); selectivity hit counts come from the
   same sorted-round-index bisects the scalar path uses
   (:meth:`HistoryProfile.selectivity_hits_block` and its
   position-aware sibling ``selectivity_hits_block_pos``).
2. *Same float expressions.*  Every arithmetic step mirrors the scalar
   expression tree op for op (``w_s*sigma + w_a*alpha`` then clamp;
   ``(q + tail_sum + 1.0) / (tail_n + 2)``; …) — numpy's float64 ufuncs
   round identically to CPython floats, so equal expressions give equal
   bits.  Batch rows are computed element-wise, so *what else* is in a
   batch can never change a row's bits.
3. *Same RNG order.*  The only RNG consumer on the scoring path is the
   lazy per-link bandwidth draw inside ``CostModel.decision_cost``.
   Cost vectors are therefore computed by a plain Python loop over the
   candidate ids in scalar candidate order, only for top-level
   decisions — never eagerly, never batched — so first-use draws happen
   at exactly the same points of the run.  Quality rows and SPNE tables
   touch no RNG at all, which is what makes speculative cross-
   connection batching sound.

**Backward induction as edge states.**  A memo state of the scalar
Model II recursion is ``(node, predecessor, depth)``; since the
predecessor is always the node that forwarded here, the reachable
states at each depth are exactly the *directed edges* of the overlay.
The induction therefore runs level-synchronously over one flat array of
per-(state, child) entries: gather the previous level's values through
``st_child_edge``, form candidate means, and reduce per state with
``np.maximum.reduceat`` (first-maximum index via a positional
``np.minimum.reduceat``), reproducing the scalar loop's strict-``>``
first-winner tie behaviour.

**Position-aware selectivity.**  ``position_aware_selectivity=True``
conditions ``sigma`` on the upstream hop.  In state space that is
natural: state ``e = (u -> v)`` already carries the predecessor ``u``,
so the induction's base quality becomes a per-(state, child) column
``q_child`` (edge ``v -> w`` scored against ``u``-conditioned
selectivity) instead of the shared per-edge row.  Root decisions score
the deciding node's own slice against the *actual* predecessor
directly (the edge ``predecessor -> node`` need not exist in the CSR —
neighbour sets are not symmetric), cached per ``(node, predecessor)``.

**Snapshot semantics.**  Quality, availability and topology are
snapshotted per ``(cid, round)`` — the same contract the scalar caches
document (histories commit after the round; probe counters advance
between rounds).  Frontier quality state carries a freshness token
``(round_index, WorldArrays.alpha_generation)`` so a speculatively
pre-built row is dropped, never misused, when probing moved
availability before the round actually ran.  Liveness is snapshotted
per formation *attempt*: ``ForwardingContext.begin_attempt`` observes
``Overlay.liveness_version`` so a mid-round crash (fault injection)
refreshes the candidate world for the next attempt on both backends.

**Small-world crossover.**  The kernels win on batch size; on tiny
candidate sets the array bookkeeping costs more than the scalar loop
(measured ~3x slower for Model I at degree 5).  Dispatch therefore
stays scalar below :data:`MODEL1_KERNEL_MIN_CANDIDATES` candidates
(Model I) / :data:`MODEL2_KERNEL_MIN_NODES` overlay nodes (Model II)
unless the context disables the crossover.  Both branches are
bit-identical, so mixing them within one run is sound.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.monitoring import PERF

if TYPE_CHECKING:  # typing only: no runtime dependency on the upper layers
    from repro.core.routing import ForwardingContext
    from repro.network.overlay import Overlay


#: Recognised backend names, in preference-documentation order.
BACKENDS: Tuple[str, ...] = ("python", "numpy")

#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV = "REPRO_BACKEND"

#: Model I stays scalar below this many neighbours at the deciding node:
#: a single tiny candidate row costs more to stage into arrays than to
#: loop over (measured crossover on the hotpath benchmarks).
MODEL1_KERNEL_MIN_CANDIDATES = 12

#: Model II stays scalar below this many overlay nodes: the SPNE tables
#: batch over every directed edge, so the win scales with the edge
#: count, not the candidate count.
MODEL2_KERNEL_MIN_NODES = 20

#: Frontier cache bound per planner (oldest evicted first).  Generous:
#: a frontier is a handful of per-edge arrays, and scenarios keep well
#: under this many connections open at once.
MAX_FRONTIERS = 128


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend, else raise ``ValueError``."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {list(BACKENDS)}"
        )
    return name


def default_backend() -> str:
    """The process-wide default backend: ``$REPRO_BACKEND`` or ``numpy``.

    The batched numpy kernels are the default — the scalar backend is
    the executable specification, kept bit-identical by the
    differential suite and selectable with ``REPRO_BACKEND=python``
    (or an explicit ``backend=`` argument) when stepping through
    decisions matters more than throughput.
    """
    value = os.environ.get(BACKEND_ENV, "").strip()
    if not value:
        return "numpy"
    return validate_backend(value)


class WorldArrays:
    """Struct-of-arrays view of the overlay, shared across rounds.

    Layout (all arrays are index-aligned on the *directed edge* axis;
    ``indptr`` is indexed by node id, so edge ``e`` with
    ``indptr[u] <= e < indptr[u+1]`` is the edge ``u -> nbr_flat[e]``,
    neighbours sorted ascending — the scalar candidate order):

    ``indptr``         CSR row pointers per node id.
    ``nbr_flat``       Edge head (neighbour id) per edge.
    ``owner_flat``     Edge tail (owning node id) per edge.
    ``alpha_flat``     Cached availability ``alpha(owner -> head)``.

    SPNE structure (state ``e`` = edge, i.e. "standing at ``head(e)``
    having arrived from ``owner(e)``"; its children are the CSR entries
    of ``head(e)``):

    ``st_counts``         Children per state.
    ``st_red_idx``        Segment starts for ``reduceat`` (clipped).
    ``st_child_edge``     Flat child -> edge index gather table.
    ``st_child_not_pred`` Per child: head differs from the state's
                          predecessor (the no-backtracking filter).
    ``child_pos``         ``arange`` over the flat child axis.

    Invalidation: :meth:`ensure_fresh` rebuilds the topology (and bumps
    ``generation``) when any node's ``neighbors_version`` moved or the
    node population changed, and re-patches per-node ``alpha_flat``
    slices whose ``availability_version`` moved (bumping
    ``alpha_generation``, the token frontier quality rows key on).
    Liveness is *not* stored here — it changes mid-round under fault
    injection and is masked per :class:`Frontier`.
    """

    def __init__(self, overlay: "Overlay") -> None:
        self.overlay = overlay
        #: Bumped on every topology rebuild; frontiers compare against it.
        self.generation = 0
        #: Bumped whenever any ``alpha_flat`` slice is re-patched; part
        #: of the quality-row freshness token, so rows pre-built for a
        #: future round survive exactly until availability moves.
        self.alpha_generation = 0
        self.size = 0
        self.n_edges = 0
        self.indptr: Optional[np.ndarray] = None
        self.nbr_flat = np.zeros(0, dtype=np.int64)
        self.owner_flat = np.zeros(0, dtype=np.int64)
        self.alpha_flat = np.zeros(0, dtype=np.float64)
        self.nbr_lists: Dict[int, List[int]] = {}
        self.st_counts = np.zeros(0, dtype=np.int64)
        self.st_red_idx = np.zeros(0, dtype=np.int64)
        self.st_child_edge = np.zeros(0, dtype=np.int64)
        self.st_child_not_pred = np.zeros(0, dtype=bool)
        self.child_pos = np.zeros(0, dtype=np.int64)
        #: Unclipped per-state child offsets (``st_offsets[s]`` is the
        #: first flat-child index of state ``s``; length ``n_edges+1``).
        #: The sharded engine partitions the state axis by bisecting
        #: this for balanced per-worker child counts.
        self.st_offsets = np.zeros(1, dtype=np.int64)
        self._nbr_versions: Dict[int, int] = {}
        self._alpha_versions: Dict[int, int] = {}
        #: O(1) staleness token: (overlay.topology_version, overlay
        #: ``_next_id``, node count) at the last rebuild, trusted only
        #: when every snapshot node's ``_topology_listener`` was wired
        #: to this overlay (``_wired_snapshot``) — unwired nodes mutate
        #: without bumping the aggregate counter, so the per-node scan
        #: stays the authoritative fallback.
        self._topo_token: Optional[tuple] = None
        self._wired_snapshot = False
        self._perf = PERF.counters

    # -- freshness ---------------------------------------------------------
    def ensure_fresh(self) -> None:
        """Bring topology and availability arrays up to date (cheap when
        nothing changed: one version compare per node)."""
        if self._topology_stale():
            self._rebuild_topology()
        self._refresh_alpha()

    def _topology_stale(self) -> bool:
        if self.indptr is None:
            return True
        overlay = self.overlay
        if self._wired_snapshot and self._topo_token == (
            getattr(overlay, "topology_version", None),
            getattr(overlay, "_next_id", None),
            len(overlay.nodes),
        ):
            # Every snapshot node pushes neighbour-set changes into the
            # overlay's aggregate counter, node creation bumps
            # ``_next_id`` and removal shrinks ``nodes`` — so three
            # O(1) compares cover everything the scan below detects.
            return False
        nodes = overlay.nodes
        vers = self._nbr_versions
        if len(nodes) != len(vers):
            return True
        get = vers.get
        for nid, node in nodes.items():
            if get(nid) != node.neighbors_version:
                return True
        return False

    def _rebuild_topology(self) -> None:
        nodes = self.overlay.nodes
        ids = sorted(nodes)
        nbr_lists: Dict[int, List[int]] = {}
        vers: Dict[int, int] = {}
        max_ref = ids[-1] if ids else -1
        for nid in ids:
            node = nodes[nid]
            lst = sorted(node.neighbors)
            nbr_lists[nid] = lst
            vers[nid] = node.neighbors_version
            if lst and lst[-1] > max_ref:
                max_ref = lst[-1]
        size = max_ref + 1
        indptr = np.zeros(size + 1, dtype=np.int64)
        for nid, lst in nbr_lists.items():
            indptr[nid + 1] = len(lst)
        np.cumsum(indptr, out=indptr)
        n_edges = int(indptr[-1]) if size else 0
        # nbr_lists iterates in ascending-id insertion order and absent
        # ids contribute empty segments, so concatenating the lists IS
        # the CSR payload.
        nbr_flat = np.fromiter(
            (j for lst in nbr_lists.values() for j in lst),
            dtype=np.int64,
            count=n_edges,
        )
        deg = np.diff(indptr)
        owner_flat = np.repeat(np.arange(size, dtype=np.int64), deg)

        self.size = size
        self.n_edges = n_edges
        self.indptr = indptr
        self.nbr_flat = nbr_flat
        self.owner_flat = owner_flat
        self.nbr_lists = nbr_lists
        self._nbr_versions = vers
        cb = getattr(self.overlay, "_on_topology_change", None)
        self._wired_snapshot = cb is not None and all(
            node._topology_listener == cb for node in nodes.values()
        )
        self._topo_token = (
            getattr(self.overlay, "topology_version", None),
            getattr(self.overlay, "_next_id", None),
            len(nodes),
        )
        self._build_state_structure()
        # Alpha slices are laid out per edge; a new layout means every
        # slice must be re-read.
        self.alpha_flat = np.zeros(n_edges, dtype=np.float64)
        self._alpha_versions = {}
        self.generation += 1
        self._perf.array_rebuilds += 1

    def _build_state_structure(self) -> None:
        """Derive the SPNE gather tables from the CSR (pure topology)."""
        assert self.indptr is not None
        if self.n_edges == 0:
            self.st_counts = np.zeros(0, dtype=np.int64)
            self.st_red_idx = np.zeros(0, dtype=np.int64)
            self.st_child_edge = np.zeros(0, dtype=np.int64)
            self.st_child_not_pred = np.zeros(0, dtype=bool)
            self.child_pos = np.zeros(0, dtype=np.int64)
            self.st_offsets = np.zeros(1, dtype=np.int64)
            return
        deg = np.diff(self.indptr)
        head = self.nbr_flat
        st_counts = deg[head]
        offsets = np.concatenate(
            ([0], np.cumsum(st_counts))
        ).astype(np.int64, copy=False)
        total = int(offsets[-1])
        self.st_counts = st_counts
        self.st_offsets = offsets
        # reduceat needs in-bounds starts; empty trailing segments are
        # clipped here and their garbage results overwritten by the dead
        # mask downstream.
        self.st_red_idx = np.minimum(offsets[:-1], max(total - 1, 0))
        if total == 0:
            self.st_child_edge = np.zeros(0, dtype=np.int64)
            self.st_child_not_pred = np.zeros(0, dtype=bool)
            self.child_pos = np.zeros(0, dtype=np.int64)
            return
        # Segmented arange: child c of state e maps to CSR entry
        # indptr[head(e)] + (c's rank within the segment).
        pos = np.arange(total, dtype=np.int64)
        rank = pos - np.repeat(offsets[:-1], st_counts)
        child_edge = np.repeat(self.indptr[head], st_counts) + rank
        child_ids = self.nbr_flat[child_edge]
        pred_rep = np.repeat(self.owner_flat, st_counts)
        self.st_child_edge = child_edge
        self.st_child_not_pred = child_ids != pred_rep
        self.child_pos = pos

    def _refresh_alpha(self) -> None:
        nodes = self.overlay.nodes
        avers = self._alpha_versions
        starts = self.indptr.tolist()
        alpha = self.alpha_flat
        touched = False
        for nid, lst in self.nbr_lists.items():
            node = nodes[nid]
            ver = node.availability_version
            if avers.get(nid) == ver:
                continue
            if lst:
                # Read the node's own cached normalisation: these are the
                # exact floats the scalar backend scores with (re-summing
                # in numpy would round differently).
                av = node.availability_vector()
                start = starts[nid]
                alpha[start : start + len(lst)] = [av[j] for j in lst]
            avers[nid] = ver
            touched = True
        if touched:
            self.alpha_generation += 1
            self._perf.array_rebuilds += 1


def spne_state_validity(
    valid0: np.ndarray,
    child_edge: np.ndarray,
    not_pred_mask: np.ndarray,
    st_counts: np.ndarray,
    red_idx: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """State-level candidate validity for one contiguous state range.

    ``child_edge``/``not_pred_mask``/``red_idx`` describe the range's
    *local* child axis (``red_idx`` indexes into it); ``valid0`` is the
    full edge-axis liveness row the children gather from.  Returns the
    per-child ``st_valid`` mask and per-state ``st_dead`` mask.

    This is the single code path for both the whole-axis planner build
    and the sharded per-worker build: ``logical_or.reduceat`` is
    order-insensitive within a segment and segments never straddle a
    range boundary, so any partition of the state axis produces the
    same masks the whole-axis call produces.
    """
    if child_edge.size == 0:
        return np.zeros(0, dtype=bool), np.ones(st_counts.size, dtype=bool)
    v0c = valid0[child_edge]
    not_pred = v0c & not_pred_mask
    # Scalar fallback rule, per state: exclude the predecessor
    # unless that empties the candidate set.
    has_alt = np.logical_or.reduceat(not_pred, red_idx)
    use_filtered = np.repeat(has_alt, st_counts)
    st_valid = np.where(use_filtered, not_pred, v0c)
    has_any = np.logical_or.reduceat(st_valid, red_idx)
    has_any[st_counts == 0] = False
    return st_valid, ~has_any


def spne_level_step(
    base_child: np.ndarray,
    prev_sum: np.ndarray,
    prev_n: np.ndarray,
    child_edge: np.ndarray,
    st_counts: np.ndarray,
    red_idx: np.ndarray,
    child_pos: np.ndarray,
    st_valid: np.ndarray,
    st_dead: np.ndarray,
    out_sum: np.ndarray,
    out_n: np.ndarray,
) -> None:
    """One backward-induction level for one contiguous state range.

    ``prev_sum``/``prev_n`` are the *complete* previous level (children
    may live in any state range); everything else is local to the range
    (``base_child`` is the child-axis base quality, already gathered by
    the caller; ``red_idx``/``child_pos`` index the local child axis).
    Results are written into ``out_sum``/``out_n`` (length = states in
    the range) — for the sharded engine these are shared-memory views.

    Bitwise range-decomposition safety: the arithmetic is element-wise,
    ``maximum``/``minimum.reduceat`` are order-insensitive per segment,
    and segments never straddle a range boundary; the only range-
    dependent values are the garbage rows of empty trailing segments,
    which the ``st_dead`` overwrite zeroes either way.
    """
    if child_edge.size == 0:
        out_sum[:] = 0.0
        out_n[:] = 0
        return
    total_sum = base_child + prev_sum[child_edge]
    total_n = 1 + prev_n[child_edge]
    mean = total_sum / total_n
    # Invalid children get a sentinel below every reachable mean
    # (means are >= 0; the scalar loop's initial best is -1.0).
    masked = np.where(st_valid, mean, -2.0)
    seg_max = np.maximum.reduceat(masked, red_idx)
    # First index attaining the segment max == the scalar loop's
    # strict-`>` first winner (children are in ascending-id,
    # i.e. scalar candidate, order).
    at_max = masked == np.repeat(seg_max, st_counts)
    pos = np.where(at_max, child_pos, child_edge.size)
    first = np.minimum.reduceat(pos, red_idx)
    sel = np.minimum(first, child_edge.size - 1)
    out_sum[:] = total_sum[sel]
    out_n[:] = total_n[sel]
    out_sum[st_dead] = 0.0
    out_n[st_dead] = 0


class Frontier:
    """Per-connection derived state inside a :class:`BatchPlanner`.

    Three epochs, invalidated independently by freshness tokens:

    - quality (``q_flat``/``q_child``/``pos_q_cache``): keyed
      ``(round_index, WorldArrays.alpha_generation)`` — history commits
      advance the round, probe sweeps advance ``alpha_generation``;
    - liveness (``valid0``/``st_valid``/``st_dead`` and the cost
      cache): keyed ``Overlay.liveness_version``;
    - SPNE value tables (``levels_*``): keyed on both plus the
      position-aware flag.
    """

    __slots__ = (
        "cid",
        "round_index",
        "responder",
        "generation",
        "wants_full_row",
        "prepared",
        "q_flat",
        "q_built",
        "row_complete",
        "q_token",
        "q_child",
        "q_child_token",
        "pos_q_cache",
        "valid0",
        "st_valid",
        "st_dead",
        "liveness_token",
        "levels_sum",
        "levels_n",
        "levels_token",
        "cost_cache",
    )

    def __init__(self, cid: int, round_index: int, responder: int) -> None:
        self.cid = cid
        self.round_index = round_index
        self.responder = responder
        self.generation = -1
        #: True once any Model II decision needed the full quality row —
        #: only such connections are worth pre-building into batches.
        self.wants_full_row = False
        #: Set by :meth:`BatchPlanner.prepare`, cleared after one
        #: speculative build: each announced round buys at most one
        #: pre-built row, so retired connections never leak work into
        #: later batches.
        self.prepared = False
        self.q_flat = np.zeros(0, dtype=np.float64)
        self.q_built = np.zeros(0, dtype=bool)
        self.row_complete = False
        self.q_token: Optional[Tuple[int, int]] = None
        self.q_child: Optional[np.ndarray] = None
        self.q_child_token: Optional[Tuple[int, int]] = None
        self.pos_q_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self.valid0: Optional[np.ndarray] = None
        self.st_valid: Optional[np.ndarray] = None
        self.st_dead: Optional[np.ndarray] = None
        self.liveness_token: Optional[int] = None
        self.levels_sum: Optional[List[np.ndarray]] = None
        self.levels_n: Optional[List[np.ndarray]] = None
        self.levels_token: Optional[tuple] = None
        self.cost_cache: Dict[Tuple[int, Optional[int]], np.ndarray] = {}


class BatchPlanner:
    """Round-level batch planner: one per :class:`PathBuilder` (or per
    bare context), holding one :class:`Frontier` per open connection
    over a shared :class:`WorldArrays`.

    All contexts routed through one planner must share ``histories``
    and ``weights`` (true for every context a single ``PathBuilder``
    creates) — quality rows are built from them without re-reading per
    decision.  Contract payloads and responders may differ per
    connection; they live on the frontier.
    """

    def __init__(self, world: WorldArrays) -> None:
        self.world = world
        self.frontiers: Dict[int, Frontier] = {}
        #: High-water mark of frontiers scored in one stacked kernel
        #: call — the cross-connection batching observable.
        self.max_batched_frontiers = 0
        self._last_key: Optional[Tuple[int, int]] = None
        self._mask: Optional[np.ndarray] = None
        self._mask_key: Optional[Tuple[int, int]] = None
        self._perf = PERF.counters

    # -- announcements -----------------------------------------------------
    def prepare(self, cid: int, round_index: int, responder: int) -> None:
        """Announce that connection ``cid`` will next build
        ``round_index`` — called by the protocol layer right after a
        path commit, when the round's history is final.

        Cheap: no arrays are touched here.  The frontier is only marked
        eligible for the next stacked quality build, so another
        connection's decision computes this one's row for free.  If the
        prediction misses (cid rotation re-keyed the epoch, probing
        moved availability first), the freshness token discards the row
        — speculation is never observable, only faster.
        """
        fr = self.frontiers.get(cid)
        if fr is None:
            fr = self._new_frontier(cid, round_index, responder)
        fr.round_index = round_index
        fr.responder = responder
        fr.prepared = True

    # -- frontier bookkeeping ----------------------------------------------
    def _new_frontier(self, cid: int, round_index: int, responder: int) -> Frontier:
        if len(self.frontiers) >= MAX_FRONTIERS:
            self.frontiers.pop(next(iter(self.frontiers)))
        fr = Frontier(cid, round_index, responder)
        self.frontiers[cid] = fr
        return fr

    def _reset_frontier(self, fr: Frontier) -> None:
        world = self.world
        fr.generation = world.generation
        fr.q_flat = np.zeros(world.n_edges, dtype=np.float64)
        fr.q_built = np.zeros(world.size, dtype=bool)
        fr.row_complete = world.n_edges == 0
        fr.q_token = None
        fr.q_child = None
        fr.q_child_token = None
        fr.pos_q_cache = {}
        fr.valid0 = None
        fr.st_valid = None
        fr.st_dead = None
        fr.liveness_token = None
        fr.levels_sum = None
        fr.levels_n = None
        fr.levels_token = None
        fr.cost_cache = {}

    def _sync_round_token(self, fr: Frontier) -> None:
        tok = (fr.round_index, self.world.alpha_generation)
        if fr.q_token != tok:
            fr.q_token = tok
            fr.row_complete = self.world.n_edges == 0
            fr.q_built[:] = False
            fr.pos_q_cache.clear()
            fr.q_child = None
            fr.q_child_token = None

    def _frontier(self, context: "ForwardingContext", node_id: int) -> Frontier:
        """The synced frontier for the context's connection.

        ``WorldArrays.ensure_fresh`` (the O(nodes) version scan) runs
        once per ``(cid, round)`` — between decisions of one round only
        liveness can move, and that has its own token.
        """
        world = self.world
        key = (context.cid, context.round_index)
        if key != self._last_key:
            world.ensure_fresh()
            self._last_key = key
        elif world.indptr is None or node_id + 1 >= world.indptr.size:
            world.ensure_fresh()
        fr = self.frontiers.get(context.cid)
        if fr is None:
            fr = self._new_frontier(
                context.cid, context.round_index, context.responder
            )
        fr.round_index = context.round_index
        if fr.generation != world.generation:
            self._reset_frontier(fr)
        if fr.responder != context.responder:
            fr.responder = context.responder
            fr.valid0 = None
            fr.st_valid = None
            fr.st_dead = None
            fr.liveness_token = None
            fr.levels_token = None
            fr.cost_cache.clear()
        self._sync_round_token(fr)
        return fr

    # -- liveness ----------------------------------------------------------
    def _online_mask(self) -> np.ndarray:
        """Overlay liveness as a bool vector, shared across frontiers
        within one ``(liveness_version, generation)`` epoch."""
        world = self.world
        key = (world.overlay.liveness_version, world.generation)
        if key != self._mask_key or self._mask is None:
            self._mask = world.overlay.online_mask(world.size)
            self._mask_key = key
        return self._mask

    def _ensure_liveness(self, fr: Frontier, context: "ForwardingContext") -> None:
        stamp = context.overlay.liveness_version
        if fr.liveness_token == stamp and fr.valid0 is not None:
            return
        world = self.world
        nbr = world.nbr_flat
        online = self._online_mask()
        fr.valid0 = online[nbr] & (nbr != fr.responder)
        # State-level (SPNE) validity is derived lazily: Model I
        # decisions never touch it, and it is ~branching-factor times
        # larger than the edge axis.
        fr.st_valid = None
        fr.st_dead = None
        fr.cost_cache.clear()
        fr.liveness_token = stamp
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(nbr.size)

    def _ensure_state_valid(self, fr: Frontier) -> None:
        if fr.st_valid is not None:
            return
        world = self.world
        fr.st_valid, fr.st_dead = spne_state_validity(
            fr.valid0,
            world.st_child_edge,
            world.st_child_not_pred,
            world.st_counts,
            world.st_red_idx,
        )

    # -- quality -----------------------------------------------------------
    def _ensure_q_node(self, fr: Frontier, context: "ForwardingContext", node_id: int) -> None:
        """Lazily score one node's slice (Model I touches only the
        deciding node's row; also the root row under position-aware
        scoring with no predecessor)."""
        if fr.row_complete or fr.q_built[node_id]:
            return
        world = self.world
        start = int(world.indptr[node_id])
        end = int(world.indptr[node_id + 1])
        if start == end:
            fr.q_built[node_id] = True
            return
        nbrs = world.nbr_lists[node_id]
        hits = context.histories[node_id].selectivity_hits_block(
            fr.cid, nbrs, fr.round_index
        )
        max_entries = fr.round_index - 1
        if max_entries == 0:
            sigma = np.zeros(end - start, dtype=np.float64)
        else:
            sigma = np.minimum(
                1.0, np.asarray(hits, dtype=np.float64) / max_entries
            )
        weights = context.weights
        q = (
            weights.selectivity * sigma
            + weights.availability * world.alpha_flat[start:end]
        )
        fr.q_flat[start:end] = np.minimum(1.0, np.maximum(0.0, q))
        fr.q_built[node_id] = True
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += end - start
        perf.edges_scored += end - start

    def _ensure_full_rows(self, fr: Frontier, context: "ForwardingContext") -> None:
        """The cross-connection quality kernel: stack every stale
        prepared frontier's hit counts into one ``(F, E)`` matrix and
        score all rows with a single vectorised expression.

        Per-frontier hit gathering stays a Python loop of bisects (rule
        1 of the bit-identity contract), but the arithmetic — the part
        that used to run once per node per connection — runs once per
        batch.  Rows are element-wise independent, so co-batching can
        never change a row's bits.
        """
        fr.wants_full_row = True
        if fr.row_complete:
            return
        world = self.world
        members = [fr]
        for other in self.frontiers.values():
            if other is fr or not (other.wants_full_row and other.prepared):
                continue
            other.prepared = False
            if other.generation != world.generation:
                self._reset_frontier(other)
            self._sync_round_token(other)
            if not other.row_complete:
                members.append(other)
        n_edges = world.n_edges
        hits_mat = np.empty((len(members), n_edges), dtype=np.float64)
        histories = context.histories
        for i, member in enumerate(members):
            row: List[int] = []
            extend = row.extend
            cid, rnd = member.cid, member.round_index
            for nid, lst in world.nbr_lists.items():
                if lst:
                    extend(
                        histories[nid].selectivity_hits_block(cid, lst, rnd)
                    )
            hits_mat[i, :] = row
        max_entries = np.array(
            [float(member.round_index - 1) for member in members],
            dtype=np.float64,
        )
        # Round-1 rows have all-zero hits, so any positive divisor
        # reproduces the scalar "no history yet -> sigma = 0" branch.
        safe = np.where(max_entries > 0.0, max_entries, 1.0)
        sigma = np.minimum(1.0, hits_mat / safe[:, None])
        weights = context.weights
        q = (
            weights.selectivity * sigma
            + weights.availability * world.alpha_flat[None, :]
        )
        q = np.minimum(1.0, np.maximum(0.0, q))
        alpha_gen = world.alpha_generation
        for member, q_row in zip(members, q):
            member.q_flat = q_row
            member.q_built = np.ones(world.size, dtype=bool)
            member.row_complete = True
            member.q_token = (member.round_index, alpha_gen)
        if len(members) > self.max_batched_frontiers:
            self.max_batched_frontiers = len(members)
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(q.size)
        perf.edges_scored += int(q.size)

    def _ensure_q_child(self, fr: Frontier, context: "ForwardingContext") -> None:
        """Position-aware base quality per (state, child): the edge
        ``head(e) -> child`` scored against selectivity conditioned on
        ``owner(e)`` — the predecessor the SPNE state already encodes."""
        tok = (fr.round_index, self.world.alpha_generation)
        if fr.q_child is not None and fr.q_child_token == tok:
            return
        world = self.world
        total = int(world.st_child_edge.size)
        histories = context.histories
        cid, rnd = fr.cid, fr.round_index
        hits: List[int] = []
        extend = hits.extend
        heads = world.nbr_flat.tolist()
        owners = world.owner_flat.tolist()
        nbr_lists = world.nbr_lists
        for e in range(len(heads)):
            lst = nbr_lists.get(heads[e])
            if lst:
                extend(
                    histories[heads[e]].selectivity_hits_block_pos(
                        cid, owners[e], lst, rnd
                    )
                )
        max_entries = rnd - 1
        if max_entries == 0:
            sigma = np.zeros(total, dtype=np.float64)
        else:
            sigma = np.minimum(
                1.0, np.asarray(hits, dtype=np.float64) / max_entries
            )
        weights = context.weights
        q = (
            weights.selectivity * sigma
            + weights.availability * world.alpha_flat[world.st_child_edge]
        )
        fr.q_child = np.minimum(1.0, np.maximum(0.0, q))
        fr.q_child_token = tok
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += total
        perf.edges_scored += total

    def _pos_q(
        self, fr: Frontier, context: "ForwardingContext", node_id: int, predecessor: int
    ) -> np.ndarray:
        """Root-decision quality slice for ``node_id`` conditioned on the
        actual ``predecessor``.  Computed directly from the node's own
        candidate list — the edge ``predecessor -> node`` need not exist
        in the CSR (neighbour sets are not symmetric), so this cannot be
        a ``q_child`` lookup."""
        key = (node_id, predecessor)
        cached = fr.pos_q_cache.get(key)
        if cached is not None:
            return cached
        world = self.world
        start = int(world.indptr[node_id])
        end = int(world.indptr[node_id + 1])
        nbrs = world.nbr_lists[node_id]
        hits = context.histories[node_id].selectivity_hits_block_pos(
            fr.cid, predecessor, nbrs, fr.round_index
        )
        max_entries = fr.round_index - 1
        if max_entries == 0:
            sigma = np.zeros(end - start, dtype=np.float64)
        else:
            sigma = np.minimum(
                1.0, np.asarray(hits, dtype=np.float64) / max_entries
            )
        weights = context.weights
        q = (
            weights.selectivity * sigma
            + weights.availability * world.alpha_flat[start:end]
        )
        q = np.minimum(1.0, np.maximum(0.0, q))
        fr.pos_q_cache[key] = q
        perf = self._perf
        perf.kernel_calls += 1
        perf.kernel_batch_elements += end - start
        perf.edges_scored += end - start
        return q

    # -- SPNE value tables ---------------------------------------------------
    def _ensure_levels(
        self,
        fr: Frontier,
        context: "ForwardingContext",
        depth: int,
        position_aware: bool,
    ) -> None:
        """Level-batched backward induction: ``levels_sum[d][e]`` /
        ``levels_n[d][e]`` are the scalar memo's ``(best_sum, best_n)``
        for state ``e`` with ``d`` edges of lookahead left."""
        world = self.world
        n_edges = world.n_edges
        tok = (
            fr.round_index,
            world.alpha_generation,
            fr.liveness_token,
            position_aware,
        )
        if fr.levels_sum is None or fr.levels_token != tok:
            self._reset_levels(fr)
            fr.levels_token = tok
        base_q = fr.q_child if position_aware else fr.q_flat
        perf = self._perf
        while len(fr.levels_sum) <= depth:
            child_edge = world.st_child_edge
            if child_edge.size == 0:
                fr.levels_sum.append(fr.levels_sum[0])
                fr.levels_n.append(fr.levels_n[0])
                continue
            new_sum, new_n = self._level_step(fr, base_q, position_aware)
            fr.levels_sum.append(new_sum)
            fr.levels_n.append(new_n)
            perf.kernel_calls += 1
            perf.kernel_batch_elements += int(child_edge.size)

    def _reset_levels(self, fr: Frontier) -> None:
        """Start a fresh level stack (level 0 = all zeros).  Overridden
        by the sharded planner to place levels in shared memory."""
        n_edges = self.world.n_edges
        fr.levels_sum = [np.zeros(n_edges, dtype=np.float64)]
        fr.levels_n = [np.zeros(n_edges, dtype=np.int64)]

    def _level_step(
        self, fr: Frontier, base_q: np.ndarray, position_aware: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compute the next level over the whole state axis.  The
        sharded planner overrides this to fan the state ranges out to
        shard workers; both paths run :func:`spne_level_step`, so they
        are bitwise-identical by construction."""
        self._ensure_state_valid(fr)
        world = self.world
        child_edge = world.st_child_edge
        # q_child is already laid out on the flat child axis; the
        # per-edge row gathers through the child table first.
        base_child = base_q if position_aware else base_q[child_edge]
        new_sum = np.empty(world.n_edges, dtype=np.float64)
        new_n = np.empty(world.n_edges, dtype=np.int64)
        spne_level_step(
            base_child,
            fr.levels_sum[-1],
            fr.levels_n[-1],
            child_edge,
            world.st_counts,
            world.st_red_idx,
            world.child_pos,
            fr.st_valid,
            fr.st_dead,
            new_sum,
            new_n,
        )
        return new_sum, new_n

    # -- candidates & costs -------------------------------------------------
    def _candidates(
        self, fr: Frontier, node_id: int, predecessor: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(flat edge indices, neighbour ids) of the candidate set, in
        ascending-id order — the scalar ``candidates()`` semantics."""
        world = self.world
        start = int(world.indptr[node_id])
        end = int(world.indptr[node_id + 1])
        ids = world.nbr_flat[start:end]
        valid = fr.valid0[start:end]
        if predecessor is not None:
            without_pred = valid & (ids != predecessor)
            if without_pred.any():
                valid = without_pred
        rel = np.nonzero(valid)[0]
        return rel + start, ids[rel]

    def _costs(
        self,
        fr: Frontier,
        context: "ForwardingContext",
        node_id: int,
        predecessor: Optional[int],
        participation_cost: float,
        cand_ids: np.ndarray,
    ) -> np.ndarray:
        """Decision costs in candidate order.

        Deliberately a Python loop: ``decision_cost`` may draw a lazy
        per-link bandwidth sample from the shared RNG on first use, so
        the call order must match the scalar backend exactly.  Cached
        per (node, predecessor) within a liveness epoch — repeat calls
        hit the bandwidth model's own pair cache and draw nothing, so
        skipping them cannot shift the RNG stream.
        """
        key = (node_id, predecessor)
        cached = fr.cost_cache.get(key)
        if cached is not None:
            return cached
        decision_cost = context.cost_model.decision_cost
        payload = context.contract.payload_size
        out = np.array(
            [
                decision_cost(participation_cost, node_id, nbr, payload)
                for nbr in cand_ids.tolist()
            ],
            dtype=np.float64,
        )
        fr.cost_cache[key] = out
        return out

    # -- decisions ----------------------------------------------------------
    def decide_model1(
        self, strategy, node, predecessor: Optional[int], context: "ForwardingContext"
    ) -> Optional[int]:
        """Batched Utility Model I: whole candidate set -> utility vector,
        arraywise argmax with the quality/id tie-break."""
        node_id = node.node_id
        fr = self._frontier(context, node_id)
        self._ensure_liveness(fr, context)
        cand_idx, cand_ids = self._candidates(fr, node_id, predecessor)
        if cand_ids.size == 0:
            return None
        sel_pred = context.selectivity_predecessor(predecessor)
        if sel_pred is None:
            self._ensure_q_node(fr, context, node_id)
            q = fr.q_flat[cand_idx]
        else:
            start = int(self.world.indptr[node_id])
            q = self._pos_q(fr, context, node_id, sel_pred)[cand_idx - start]
        cost = self._costs(
            fr, context, node_id, predecessor, node.participation_cost, cand_ids
        )
        if q.min() < 0.0 or q.max() > 1.0:
            raise ValueError(f"edge quality out of [0,1]: {q}")
        if cost.min() < 0:
            raise ValueError(f"negative cost {cost.min()}")
        contract = context.contract
        utility = (
            contract.forwarding_benefit + q * contract.routing_benefit - cost
        )
        perf = self._perf
        perf.utility_evaluations += int(cand_ids.size)
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(cand_ids.size)
        pos = _argmax_lex(utility, q)
        if float(utility[pos]) < strategy.participation_threshold:
            return None
        return int(cand_ids[pos])

    def decide_model2(
        self, strategy, node, predecessor: Optional[int], context: "ForwardingContext"
    ) -> Optional[int]:
        """Batched Utility Model II: level-synchronous backward induction
        over edge states, then one vectorised root decision."""
        node_id = node.node_id
        fr = self._frontier(context, node_id)
        self._ensure_liveness(fr, context)
        cand_idx, cand_ids = self._candidates(fr, node_id, predecessor)
        if cand_ids.size == 0:
            return None
        position_aware = context.position_aware_selectivity
        if position_aware:
            self._ensure_q_child(fr, context)
        else:
            self._ensure_full_rows(fr, context)
        self._ensure_levels(fr, context, strategy.lookahead, position_aware)
        assert fr.levels_sum is not None and fr.levels_n is not None
        tail_sum = fr.levels_sum[strategy.lookahead][cand_idx]
        tail_n = fr.levels_n[strategy.lookahead][cand_idx]
        sel_pred = context.selectivity_predecessor(predecessor)
        if sel_pred is None:
            self._ensure_q_node(fr, context, node_id)
            q_root = fr.q_flat[cand_idx]
        else:
            start = int(self.world.indptr[node_id])
            q_root = self._pos_q(fr, context, node_id, sel_pred)[cand_idx - start]
        # Terminal delivery edge (quality 1) appended, then normalised —
        # same expression tree as the scalar path_quality_through.
        path_q = (q_root + tail_sum + 1.0) / (tail_n + 2)
        if path_q.min() < 0.0 or path_q.max() > 1.0:
            raise ValueError(f"path quality out of [0,1]: {path_q}")
        cost = self._costs(
            fr, context, node_id, predecessor, node.participation_cost, cand_ids
        )
        if cost.min() < 0:
            raise ValueError(f"negative cost {cost.min()}")
        contract = context.contract
        utility = (
            contract.forwarding_benefit + path_q * contract.routing_benefit - cost
        )
        perf = self._perf
        perf.utility_evaluations += int(cand_ids.size)
        perf.kernel_calls += 1
        perf.kernel_batch_elements += int(cand_ids.size)
        pos = _argmax_lex(utility, path_q)
        if float(utility[pos]) < strategy.participation_threshold:
            return None
        return int(cand_ids[pos])


def _argmax_lex(utility: np.ndarray, quality: np.ndarray) -> int:
    """First position maximising ``(utility, quality)``.

    Candidates arrive in ascending-id order, so the first position among
    full ties is the lowest id — exactly the scalar
    ``_argmax_with_quality_tiebreak`` ordering ``(u, q, -id)``.
    """
    ties = utility == utility.max()
    if int(ties.sum()) > 1:
        # Qualities are >= 0, so -1.0 can never win the masked max.
        masked_q = np.where(ties, quality, -1.0)
        ties = masked_q == masked_q.max()
    return int(np.argmax(ties))
