"""Wire formats for the protocol's messages.

The simulation passes Python objects between components; a deployable
system needs concrete byte encodings.  This module defines the four
messages the §2.2 protocol exchanges and a compact, versioned binary
codec for each (big-endian, length-prefixed — no pickle, no JSON
ambiguity):

- :class:`ContractOffer` — propagated hop-by-hop with the payload: the
  series' wire cid, round index, responder, and the committed ``P_f`` /
  ``P_r`` (the "contract information" of §2.2);
- :class:`ForwardRequest` — one hop's forwarding instruction: the offer
  plus the payload digest being relayed;
- :class:`ConfirmationEnvelope` — the reverse-path confirmation carrying
  sealed hop records (opaque blobs from :mod:`repro.core.secure_path`);
- :class:`ClaimSubmission` — a forwarder's settlement claim to the bank.

Every message round-trips through ``encode()`` / ``decode()`` (enforced
by property tests), rejects truncated or version-mismatched input, and
is self-delimiting so messages can be concatenated on a stream.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple, Union

#: Wire protocol version; bumped on incompatible layout changes.
WIRE_VERSION = 1

_HEADER = struct.Struct(">BBI")  # version, message type, body length


class WireError(Exception):
    """Malformed, truncated, or incompatible wire data."""


def _pack(msg_type: int, body: bytes) -> bytes:
    return _HEADER.pack(WIRE_VERSION, msg_type, len(body)) + body


def _unpack(data: bytes, expected_type: int) -> bytes:
    if len(data) < _HEADER.size:
        raise WireError("truncated header")
    version, msg_type, length = _HEADER.unpack_from(data)
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    if msg_type != expected_type:
        raise WireError(f"expected message type {expected_type}, got {msg_type}")
    body = data[_HEADER.size :]
    if len(body) != length:
        raise WireError(f"body length mismatch: header says {length}, got {len(body)}")
    return body


def _pack_bytes(blob: bytes) -> bytes:
    if len(blob) > 0xFFFF:
        raise WireError("blob too large")
    return struct.pack(">H", len(blob)) + blob


def _unpack_bytes(body: bytes, offset: int) -> Tuple[bytes, int]:
    if offset + 2 > len(body):
        raise WireError("truncated blob length")
    (length,) = struct.unpack_from(">H", body, offset)
    end = offset + 2 + length
    if end > len(body):
        raise WireError("truncated blob")
    return body[offset + 2 : end], end


@dataclass(frozen=True)
class ContractOffer:
    """§2.2 contract information, propagated with the payload."""

    cid: int
    round_index: int
    responder: int
    forwarding_benefit: float
    routing_benefit: float

    TYPE = 1
    _BODY = struct.Struct(">QIQdd")

    def encode(self) -> bytes:
        return _pack(
            self.TYPE,
            self._BODY.pack(
                self.cid,
                self.round_index,
                self.responder,
                self.forwarding_benefit,
                self.routing_benefit,
            ),
        )

    @classmethod
    def decode(cls, data: bytes) -> "ContractOffer":
        body = _unpack(data, cls.TYPE)
        if len(body) != cls._BODY.size:
            raise WireError("bad ContractOffer body size")
        cid, rnd, responder, pf, pr = cls._BODY.unpack(body)
        return cls(
            cid=cid,
            round_index=rnd,
            responder=responder,
            forwarding_benefit=pf,
            routing_benefit=pr,
        )


@dataclass(frozen=True)
class ForwardRequest:
    """One forwarding hop: the offer plus the relayed payload digest."""

    offer: ContractOffer
    hop_index: int
    payload_digest: bytes

    TYPE = 2

    def encode(self) -> bytes:
        offer_blob = self.offer.encode()
        body = (
            struct.pack(">I", self.hop_index)
            + _pack_bytes(offer_blob)
            + _pack_bytes(self.payload_digest)
        )
        return _pack(self.TYPE, body)

    @classmethod
    def decode(cls, data: bytes) -> "ForwardRequest":
        body = _unpack(data, cls.TYPE)
        if len(body) < 4:
            raise WireError("truncated ForwardRequest")
        (hop_index,) = struct.unpack_from(">I", body)
        offer_blob, offset = _unpack_bytes(body, 4)
        digest, offset = _unpack_bytes(body, offset)
        if offset != len(body):
            raise WireError("trailing bytes in ForwardRequest")
        return cls(
            offer=ContractOffer.decode(offer_blob),
            hop_index=hop_index,
            payload_digest=digest,
        )


@dataclass(frozen=True)
class ConfirmationEnvelope:
    """Reverse-path confirmation: sealed hop records as opaque blobs."""

    cid: int
    round_index: int
    sealed_records: Tuple[Tuple[int, bytes], ...]  # (wrapped_key, ciphertext)

    TYPE = 3

    def encode(self) -> bytes:
        parts: List[bytes] = [struct.pack(">QI", self.cid, self.round_index)]
        parts.append(struct.pack(">H", len(self.sealed_records)))
        for wrapped_key, ciphertext in self.sealed_records:
            key_bytes = wrapped_key.to_bytes((wrapped_key.bit_length() + 7) // 8 or 1, "big")
            parts.append(_pack_bytes(key_bytes))
            parts.append(_pack_bytes(ciphertext))
        return _pack(self.TYPE, b"".join(parts))

    @classmethod
    def decode(cls, data: bytes) -> "ConfirmationEnvelope":
        body = _unpack(data, cls.TYPE)
        if len(body) < 14:
            raise WireError("truncated ConfirmationEnvelope")
        cid, rnd = struct.unpack_from(">QI", body)
        (count,) = struct.unpack_from(">H", body, 12)
        offset = 14
        records: List[Tuple[int, bytes]] = []
        for _ in range(count):
            key_bytes, offset = _unpack_bytes(body, offset)
            ciphertext, offset = _unpack_bytes(body, offset)
            records.append((int.from_bytes(key_bytes, "big"), ciphertext))
        if offset != len(body):
            raise WireError("trailing bytes in ConfirmationEnvelope")
        return cls(cid=cid, round_index=rnd, sealed_records=tuple(records))


@dataclass(frozen=True)
class ClaimSubmission:
    """A forwarder's settlement claim for one series."""

    cid: int
    forwarder: int
    instances: int

    TYPE = 4
    _BODY = struct.Struct(">QQI")

    def encode(self) -> bytes:
        return _pack(self.TYPE, self._BODY.pack(self.cid, self.forwarder, self.instances))

    @classmethod
    def decode(cls, data: bytes) -> "ClaimSubmission":
        body = _unpack(data, cls.TYPE)
        if len(body) != cls._BODY.size:
            raise WireError("bad ClaimSubmission body size")
        cid, forwarder, instances = cls._BODY.unpack(body)
        return cls(cid=cid, forwarder=forwarder, instances=instances)


WireMessage = Union[ContractOffer, ForwardRequest, ConfirmationEnvelope, ClaimSubmission]


def decode_any(data: bytes) -> WireMessage:
    """Dispatch on the header's message type."""
    if len(data) < _HEADER.size:
        raise WireError("truncated header")
    _version, msg_type, _length = _HEADER.unpack_from(data)
    table = {
        ContractOffer.TYPE: ContractOffer,
        ForwardRequest.TYPE: ForwardRequest,
        ConfirmationEnvelope.TYPE: ConfirmationEnvelope,
        ClaimSubmission.TYPE: ClaimSubmission,
    }
    cls = table.get(msg_type)
    if cls is None:
        raise WireError(f"unknown message type {msg_type}")
    return cls.decode(data)
