"""Anonymity defences layered on the incentive mechanism (§5).

The paper lists attacks its technical report addresses; this module
implements the two standard defences from the literature that slot into
our protocol, so the attack/defence trade-offs are measurable:

- **Guard nodes** (Wright et al.'s defence against the predecessor
  attack, later adopted by Tor): the initiator pins a fixed first hop
  per series instead of re-selecting one every round.  A corrupt
  first-position forwarder then sees the *guard* as predecessor in all
  but the guarded hop, collapsing the attack's signal — unless the guard
  itself is corrupt, which happens with probability ~f once, not per
  round.
- **Connection-identifier rotation** (against the §5(3) history-profile
  attack): the wire-level cid changes every ``epoch`` rounds, so a
  captured history profile links at most one epoch of hops.  The cost is
  a selectivity reset at each rotation: stored history under the old cid
  no longer informs edge quality — a quantified tension between
  anonymity and the mechanism's reuse signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.network.overlay import Overlay


@dataclass
class GuardRegistry:
    """Per-initiator pinned first hops.

    ``assign`` draws a guard uniformly from the online population
    (excluding the initiator and responder); ``live_guard`` returns it
    while it is online, re-assigning only when the guard departs
    permanently (re-assignment on every blip would reopen the attack).
    """

    overlay: Overlay
    rng: np.random.Generator
    guards: Dict[int, int] = field(default_factory=dict)
    reassignments: int = 0

    def assign(self, initiator: int, exclude: "tuple[int, ...]" = ()) -> int:
        banned = {initiator, *exclude}
        guard = self.overlay.random_online_peer(exclude=banned)
        if guard is None:
            raise ValueError("no online candidate for guard")
        self.guards[initiator] = guard
        return guard

    def live_guard(
        self, initiator: int, exclude: "tuple[int, ...]" = ()
    ) -> Optional[int]:
        """The pinned guard if usable right now.

        - no guard yet -> assign one;
        - guard online -> return it;
        - guard departed permanently -> re-assign (counted);
        - guard temporarily offline -> None (the builder falls back to
          its strategy for this round only; re-pinning on every blip
          would reopen the predecessor attack).
        """
        from repro.network.node import NodeState

        guard = self.guards.get(initiator)
        if guard is None:
            return self._try_assign(initiator, exclude)
        if self.overlay.is_online(guard) and guard not in exclude:
            return guard
        node = self.overlay.nodes.get(guard)
        if node is None or node.state is NodeState.DEPARTED:
            self.reassignments += 1
            return self._try_assign(initiator, exclude)
        return None

    def _try_assign(self, initiator: int, exclude: "tuple[int, ...]") -> Optional[int]:
        try:
            return self.assign(initiator, exclude=exclude)
        except ValueError:
            return None


@dataclass
class CidRotator:
    """Wire-cid schedule for one series: a fresh cid every ``epoch`` rounds.

    Wire cids are drawn from a disjoint namespace per series so rotated
    epochs cannot collide across series.
    """

    series_cid: int
    epoch: int
    _base: int = field(init=False)

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {self.epoch}")
        # 2**20 epochs per series is far beyond any run length.
        self._base = self.series_cid * (2**20)

    def wire_cid(self, round_index: int) -> int:
        """The cid used on the wire for the given (1-based) round."""
        if round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {round_index}")
        return self._base + (round_index - 1) // self.epoch

    def epoch_round(self, round_index: int) -> int:
        """The round number *within* the current epoch (1-based) — what
        history selectivity can actually see."""
        if round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {round_index}")
        return (round_index - 1) % self.epoch + 1

    def epochs_used(self, rounds: int) -> int:
        if rounds < 0:
            raise ValueError(f"negative rounds {rounds}")
        return 0 if rounds == 0 else (rounds - 1) // self.epoch + 1


def linkable_fraction(rotator: CidRotator, rounds: int) -> float:
    """Upper bound on the fraction of a series' rounds an attacker can
    link through a single captured history profile: one epoch's worth."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    return min(1.0, rotator.epoch / rounds)


@dataclass
class DefenseReport:
    """Measured effect of a defence configuration (filled by benches)."""

    name: str
    attack_metric_before: float
    attack_metric_after: float
    utility_metric_before: float
    utility_metric_after: float

    @property
    def attack_reduction(self) -> float:
        if self.attack_metric_before == 0:
            return 0.0
        return 1.0 - self.attack_metric_after / self.attack_metric_before

    @property
    def utility_cost(self) -> float:
        if self.utility_metric_before == 0:
            return 0.0
        return self.utility_metric_after / self.utility_metric_before - 1.0
