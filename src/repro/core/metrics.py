"""Evaluation metrics (§2.1, §3).

- ``path_quality`` — ``Q(pi) = L / ||pi||`` (§2.1): average path length
  normalised by the forwarder-set size; higher is better (a small, reused
  forwarder set).
- ``forwarder_set`` / ``forwarder_set_size`` — the union ``Q`` of per-round
  forwarder sets.
- ``routing_efficiency`` — average payoff / average number of forwarders
  (Table 2's metric).
- ``payoff_cdf`` — empirical CDF of good-node payoffs (Figures 6, 7).
- ``confidence_interval95`` — mean +- 95% CI half-width (Figures 3, 4 error
  bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.path import SeriesLog


def forwarder_set(log: SeriesLog) -> FrozenSet[int]:
    """Union of forwarders over all rounds of a series (§2.1's ``Q``)."""
    return log.union_forwarder_set()


def forwarder_set_size(log: SeriesLog) -> int:
    """Size of the union forwarder set ``||pi||``."""
    return len(log.union_forwarder_set())


def path_quality(log: SeriesLog) -> float:
    """``Q(pi) = L / ||pi||``; 0.0 for an empty series."""
    size = forwarder_set_size(log)
    if size == 0:
        return 0.0
    return log.average_length() / size


def routing_efficiency(
    payoffs: Iterable[float], forwarder_set_sizes: Iterable[float]
) -> float:
    """Average payoff divided by average forwarder count (Table 2).

    Raises on empty inputs; returns ``inf`` when paths never formed but
    payoffs exist (cannot happen in a well-formed run).
    """
    p = np.asarray(list(payoffs), dtype=float)
    s = np.asarray(list(forwarder_set_sizes), dtype=float)
    if p.size == 0 or s.size == 0:
        raise ValueError("routing_efficiency needs non-empty inputs")
    mean_size = float(s.mean())
    mean_payoff = float(p.mean())
    if mean_size == 0:
        return float("inf") if mean_payoff > 0 else 0.0
    return mean_payoff / mean_size


def payoff_cdf(payoffs: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: (sorted values, P(X <= x)).  Figures 6-7."""
    values = np.sort(np.asarray(payoffs, dtype=float))
    if values.size == 0:
        raise ValueError("payoff_cdf needs at least one observation")
    probs = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, probs


def cdf_at(values: np.ndarray, probs: np.ndarray, x: float) -> float:
    """Evaluate an empirical CDF at ``x``."""
    return float(np.searchsorted(values, x, side="right")) / len(values)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = perfectly
    equal, -> 1 = fully concentrated).

    Quantifies the payoff skew Figures 6-7 show qualitatively: utility
    routing concentrates income on incumbent forwarders (high Gini),
    random routing spreads it (low Gini).
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("gini_coefficient needs at least one value")
    if np.any(arr < 0):
        raise ValueError("gini_coefficient requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    # Mean absolute difference formulation via the sorted cumulative sum.
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * arr) - (n + 1) * total) / (n * total))


def confidence_interval95(samples: Sequence[float]) -> Tuple[float, float]:
    """(mean, 95% CI half-width) using the normal approximation.

    Half-width is 0 for fewer than 2 samples.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("confidence_interval95 needs at least one sample")
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    sem = float(arr.std(ddof=1)) / np.sqrt(arr.size)
    return mean, 1.96 * sem


@dataclass(frozen=True)
class ConnectionSeriesStats:
    """Summary of one completed series, as consumed by the harness."""

    cid: int
    initiator: int
    responder: int
    rounds_completed: int
    failed_rounds: int
    reformations: int
    average_length: float
    forwarder_set_size: int
    path_quality: float

    @classmethod
    def from_log(cls, log: SeriesLog) -> "ConnectionSeriesStats":
        return cls(
            cid=log.cid,
            initiator=log.initiator,
            responder=log.responder,
            rounds_completed=log.rounds_completed,
            failed_rounds=log.failed_rounds,
            reformations=log.reformations,
            average_length=log.average_length(),
            forwarder_set_size=forwarder_set_size(log),
            path_quality=path_quality(log),
        )


def aggregate_payoffs(
    settlements: Iterable[Dict[int, float]],
    costs: "Dict[int, float] | None" = None,
) -> Dict[int, float]:
    """Total net payoff per node: sum of settlements minus incurred costs."""
    totals: Dict[int, float] = {}
    for s in settlements:
        for node, amount in s.items():
            totals[node] = totals.get(node, 0.0) + amount
    if costs:
        for node, c in costs.items():
            if node in totals or c != 0.0:
                totals[node] = totals.get(node, 0.0) - c
    return totals


def mean_new_edge_fraction(logs: Iterable[SeriesLog]) -> float:
    """Average fraction of *new* edges per round across series — the
    empirical ``E[X]`` of Proposition 1 (0 = perfectly stable paths,
    ~1 = every round re-forms from scratch)."""
    fractions: List[float] = []
    for log in logs:
        per_round = log.new_edges_per_round()
        for i, new_edges in enumerate(per_round):
            # Round i+2 has length+1 edges (forwarders + final delivery).
            n_edges = log.paths[i + 1].length + 1
            if n_edges > 0:
                fractions.append(new_edges / n_edges)
    if not fractions:
        return 0.0
    return float(np.mean(fractions))
