"""The paper's primary contribution: the incentive-driven forwarding core.

Subpackage map (paper section in parentheses):

- :mod:`~repro.core.contracts` — forwarding/routing benefit commitments
  ``P_f``, ``P_r = tau * P_f`` (§2.2).
- :mod:`~repro.core.history` — per-node connection history profiles
  ``H^k(s)`` and selectivity ``sigma(s, v)`` (§2.3, Table 1).
- :mod:`~repro.core.edge_quality` — ``q(s,v) = w_s*sigma + w_a*alpha``
  (§2.3).
- :mod:`~repro.core.costs` — participation + transmission cost model
  (§2.4.1).
- :mod:`~repro.core.utility` — Utility Models I and II and the initiator
  utility (§2.2, §2.4.2, §2.4.3).
- :mod:`~repro.core.routing` — routing strategies: random (baseline and
  adversary model), utility-model-I greedy, utility-model-II backward
  induction (§2.4).
- :mod:`~repro.core.path` / :mod:`~repro.core.protocol` — hop-by-hop path
  establishment with contract propagation, reverse-path confirmation and
  initiator-side validation (§2.2).
- :mod:`~repro.core.metrics` — ``Q(pi) = L/||pi||``, forwarder-set size,
  routing efficiency, payoff distributions, anonymity degree (§2.1, §3).
"""

from repro.core import anonymity
from repro.core.contracts import Contract, draw_contract
from repro.core.costs import CostModel
from repro.core.defenses import CidRotator, GuardRegistry
from repro.core.edge_quality import QualityWeights, edge_quality
from repro.core.history import HistoryProfile, HistoryRecord
from repro.core.metrics import (
    ConnectionSeriesStats,
    confidence_interval95,
    forwarder_set,
    path_quality,
    payoff_cdf,
    routing_efficiency,
)
from repro.core.path import Path, PathFailure
from repro.core.protocol import ConnectionSeries, PathBuilder, TerminationPolicy
from repro.core.rendezvous import (
    MutualConnection,
    MutualPath,
    RendezvousRegistry,
)
from repro.core.reputation import ReputationRouting, ReputationSystem
from repro.core.routing import (
    ForwardingContext,
    RandomRouting,
    RoutingStrategy,
    UtilityModelI,
    UtilityModelII,
)
from repro.core.secure_path import (
    RouteConfirmation,
    confirm_and_validate_path,
    validate_confirmation,
)
from repro.core.utility import (
    anonymity_payoff,
    forwarder_utility_model1,
    forwarder_utility_model2,
    initiator_utility,
)

__all__ = [
    "CidRotator",
    "ConnectionSeries",
    "ConnectionSeriesStats",
    "Contract",
    "CostModel",
    "ForwardingContext",
    "GuardRegistry",
    "HistoryProfile",
    "HistoryRecord",
    "MutualConnection",
    "MutualPath",
    "Path",
    "PathBuilder",
    "PathFailure",
    "QualityWeights",
    "RandomRouting",
    "RendezvousRegistry",
    "ReputationRouting",
    "ReputationSystem",
    "RouteConfirmation",
    "RoutingStrategy",
    "TerminationPolicy",
    "UtilityModelI",
    "UtilityModelII",
    "anonymity",
    "anonymity_payoff",
    "confidence_interval95",
    "confirm_and_validate_path",
    "draw_contract",
    "edge_quality",
    "forwarder_set",
    "forwarder_utility_model1",
    "forwarder_utility_model2",
    "initiator_utility",
    "path_quality",
    "payoff_cdf",
    "routing_efficiency",
    "validate_confirmation",
]
