"""Forwarder cost model (§2.4.1).

Two components:

- **participation cost** ``C^p`` — the one-time cost of running the
  anonymity software for a peer session (application-generic);
- **transmission cost** ``C^t = b * l`` — per forwarding instance, payload
  size times per-unit link cost (selfish peers prefer cheap links; the
  per-unit cost comes from the bandwidth model).

Control-packet cost is ignored, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.bandwidth import BandwidthModel


@dataclass
class CostModel:
    """Evaluates utility-model cost terms for candidate hops.

    Parameters
    ----------
    bandwidth:
        Link cost source; ``None`` means a flat ``flat_unit_cost`` per
        payload unit on every link (useful for analytic tests).
    flat_unit_cost:
        Per-unit transmission cost used when ``bandwidth`` is None.
    """

    bandwidth: Optional[BandwidthModel] = None
    flat_unit_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.flat_unit_cost < 0:
            raise ValueError(f"negative flat_unit_cost {self.flat_unit_cost}")

    def transmission_cost(self, sender: int, receiver: int, payload_size: float) -> float:
        """``C^t`` of one forwarding instance from ``sender`` to ``receiver``."""
        if self.bandwidth is not None:
            return self.bandwidth.transmission_cost(sender, receiver, payload_size)
        if payload_size < 0:
            raise ValueError(f"negative payload size {payload_size}")
        return payload_size * self.flat_unit_cost

    def decision_cost(
        self,
        node_participation_cost: float,
        sender: int,
        receiver: int,
        payload_size: float,
    ) -> float:
        """Total cost term ``C_i^p + C^t(i, j)`` in the utility models."""
        if node_participation_cost < 0:
            raise ValueError(f"negative participation cost {node_participation_cost}")
        return node_participation_cost + self.transmission_cost(
            sender, receiver, payload_size
        )
