"""Mutual anonymity via rendezvous points (§1's "responder anonymity";
related work [28]).

The base protocol hides the initiator but tells every forwarder who R
is.  For mutual anonymity, the responder hides behind a **rendezvous
node** Z, Tor-hidden-service style:

1. R picks a random online Z, registers a **pseudonym** there, and
   builds its own anonymous half-path *from itself to Z* (so Z learns
   the pseudonym and the last forwarder of R's half — never R);
2. a directory maps pseudonym -> Z (public, like a hidden-service
   descriptor);
3. an initiator that knows the pseudonym builds its half-path I -> Z and
   addresses the pseudonym; Z splices the two halves: payload flows
   I -> ... -> Z -> (reverse of R's half) -> R.

Anonymity argument: every forwarder on I's half sees Z as the
destination (not R); every forwarder on R's half sees Z as the
destination (not I); Z itself sees only two forwarders and a pseudonym.
Provided both halves have at least one forwarder — which the base
protocol guarantees — **no single node observes both endpoints**
(:func:`linkers` computes who could correlate the two halves).

Both endpoints pay for their own half (mutual anonymity costs both
parties), so settlements compose from two ordinary series settlements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.contracts import Contract
from repro.core.path import Path, PathFailure
from repro.core.protocol import PathBuilder


@dataclass(frozen=True)
class RendezvousDescriptor:
    """The public directory entry for one hidden responder."""

    pseudonym: str
    rendezvous: int


@dataclass
class RendezvousRegistry:
    """Pseudonym directory plus the responder-side secrets.

    The *directory* (pseudonym -> rendezvous node) is public; the mapping
    pseudonym -> responder exists only here, standing in for the
    responder's own knowledge — no protocol message ever carries it.
    """

    overlay: "object"
    rng: np.random.Generator
    _directory: Dict[str, RendezvousDescriptor] = field(default_factory=dict)
    _owners: Dict[str, int] = field(default_factory=dict, repr=False)

    def register(self, responder: int, pseudonym: str) -> RendezvousDescriptor:
        """Responder-side: pick a rendezvous node and publish the entry."""
        if pseudonym in self._directory:
            raise ValueError(f"pseudonym {pseudonym!r} already registered")
        z = self.overlay.random_online_peer(exclude={responder})
        if z is None:
            raise ValueError("no online candidate for a rendezvous node")
        descriptor = RendezvousDescriptor(pseudonym=pseudonym, rendezvous=z)
        self._directory[pseudonym] = descriptor
        self._owners[pseudonym] = responder
        return descriptor

    def lookup(self, pseudonym: str) -> RendezvousDescriptor:
        """Initiator-side directory lookup."""
        try:
            return self._directory[pseudonym]
        except KeyError:
            raise KeyError(f"unknown pseudonym {pseudonym!r}") from None

    def owner(self, pseudonym: str) -> int:
        """Responder identity — registry-internal, never on the wire."""
        return self._owners[pseudonym]


@dataclass(frozen=True)
class MutualPath:
    """One spliced round: I's half to Z, R's half to Z (used reversed)."""

    pseudonym: str
    rendezvous: int
    initiator_half: Path
    responder_half: Path

    @property
    def initiator(self) -> int:
        return self.initiator_half.initiator

    @property
    def responder(self) -> int:
        return self.responder_half.initiator  # R *built* its half

    @property
    def forwarder_set(self) -> FrozenSet[int]:
        return self.initiator_half.forwarder_set | self.responder_half.forwarder_set

    @property
    def total_length(self) -> int:
        """End-to-end hop count: both halves plus the splice at Z."""
        return self.initiator_half.length + self.responder_half.length + 1

    def linkers(self) -> FrozenSet[int]:
        """Nodes positioned to correlate the two halves (on both, or Z).

        Even these learn endpoint identities only by being *adjacent* to
        an endpoint on the relevant half; appearing on both halves alone
        correlates traffic, not names.
        """
        both = self.initiator_half.forwarder_set & self.responder_half.forwarder_set
        return frozenset(both | {self.rendezvous})

    def endpoint_observers(self) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """(nodes adjacent to I, nodes adjacent to R) — who *could* learn
        an endpoint's address (without knowing it is an endpoint)."""
        i_adj = {self.initiator_half.forwarders[0]} if self.initiator_half.forwarders else set()
        r_adj = {self.responder_half.forwarders[0]} if self.responder_half.forwarders else set()
        return frozenset(i_adj), frozenset(r_adj)

    def mutually_anonymous(self) -> bool:
        """No single node is adjacent to both endpoints."""
        i_adj, r_adj = self.endpoint_observers()
        return not (i_adj & r_adj)


@dataclass
class MutualConnection:
    """Drives recurring mutually-anonymous rounds for one (I, pseudonym)."""

    registry: RendezvousRegistry
    builder: PathBuilder
    cid: int
    initiator: int
    pseudonym: str
    contract: Contract
    rounds_completed: int = 0
    failed_rounds: int = 0
    paths: List[MutualPath] = field(default_factory=list)

    def run_round(self) -> Optional[MutualPath]:
        descriptor = self.registry.lookup(self.pseudonym)
        responder = self.registry.owner(self.pseudonym)
        round_index = self.rounds_completed + self.failed_rounds + 1
        try:
            half_i = self.builder.build_round(
                cid=self.cid,
                round_index=round_index,
                initiator=self.initiator,
                responder=descriptor.rendezvous,
                contract=self.contract,
            )
            # R's half uses a disjoint wire cid so the halves' histories
            # cannot be joined by cid.
            half_r = self.builder.build_round(
                cid=self.cid + 2**30,
                round_index=round_index,
                initiator=responder,
                responder=descriptor.rendezvous,
                contract=self.contract,
            )
        except PathFailure:
            self.failed_rounds += 1
            return None
        mp = MutualPath(
            pseudonym=self.pseudonym,
            rendezvous=descriptor.rendezvous,
            initiator_half=half_i,
            responder_half=half_r,
        )
        self.paths.append(mp)
        self.rounds_completed += 1
        return mp

    def settlements(self) -> Tuple[Dict[int, float], Dict[int, float]]:
        """(initiator-funded, responder-funded) payment maps.

        Each endpoint pays the §2.2 formula over its own half's union
        set and instance counts.
        """
        def settle(half_paths: List[Path]) -> Dict[int, float]:
            union: set = set()
            instances: Dict[int, int] = {}
            for p in half_paths:
                union |= p.forwarder_set
                for node, m in p.forwarding_instances().items():
                    instances[node] = instances.get(node, 0) + m
            if not union:
                return {}
            share = self.contract.routing_benefit / len(union)
            # Vectorised over the union set, preserving its iteration
            # order (int64 * float64 + float64 matches the scalar
            # per-member arithmetic bit for bit).
            ids = list(union)
            counts = np.fromiter(
                (instances.get(x, 0) for x in ids),
                dtype=np.int64,
                count=len(ids),
            )
            amounts = counts * self.contract.forwarding_benefit + share
            return dict(zip(ids, amounts.tolist()))

        return (
            settle([mp.initiator_half for mp in self.paths]),
            settle([mp.responder_half for mp in self.paths]),
        )
