"""Per-node connection history profiles and selectivity (§2.3, Table 1).

Each node stores, for every connection that passed through it, a record
``(cid, predecessor, successor)``.  For a recurring connection series
``pi = {pi^1 ... pi^k}`` (all rounds share the series' connection
identifier ``cid``), the history at node *s* before round *k* is
``H^{k-1}(s)``: the outgoing edges of *s* on rounds 1..k-1.

**Selectivity** of an edge ``(s, v)`` is the ratio of history entries for
that edge to the maximum possible number of entries, ``k - 1``.  Records
keep the predecessor so a node occupying two positions on the same path
can score the two positions' outgoing edges independently ("by using the
predecessor information, a node can differentiate between outgoing edges
for two different positions on the same path").

Selectivity is the innermost call of the routing hot path (every
candidate edge, every hop, every round), so the profile maintains two
*sorted round indices* alongside the raw record list:

- ``(cid, successor) -> sorted [round_index, ...]``
- ``(cid, predecessor, successor) -> sorted [round_index, ...]``

A selectivity query then counts matching entries with a single
``bisect`` (O(log k)) instead of scanning every stored record
(O(k)).  The indices are kept exactly consistent with ``_records``
through :meth:`record`, capacity eviction, and :meth:`forget_series`;
:meth:`selectivity_naive` retains the original linear scan as the
executable specification the differential tests check against.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.monitoring import PERF


@dataclass(frozen=True)
class HistoryRecord:
    """One stored hop: series ``cid``, round index, predecessor, successor."""

    cid: int
    round_index: int
    predecessor: int
    successor: int

    def __post_init__(self) -> None:
        if self.round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {self.round_index}")


@dataclass
class HistoryProfile:
    """History store for one node, keyed by series cid.

    ``capacity`` bounds the number of records kept *per cid* (the paper
    notes "the amount of history information stored at a node also
    influences the quality of the edge"); oldest records are evicted first.
    ``capacity=None`` keeps everything.
    """

    node_id: int
    capacity: Optional[int] = None
    _records: Dict[int, List[HistoryRecord]] = field(default_factory=dict, repr=False)
    #: cid -> successor -> sorted round indices (duplicates kept: one entry
    #: per stored record).
    _edge_rounds: Dict[int, Dict[int, List[int]]] = field(
        default_factory=dict, repr=False
    )
    #: cid -> (predecessor, successor) -> sorted round indices.
    _pos_rounds: Dict[int, Dict[Tuple[int, int], List[int]]] = field(
        default_factory=dict, repr=False
    )
    #: This thread's plain counter instance, bound once at construction —
    #: selectivity is the innermost hot-path call, so it must not pay the
    #: thread-local indirection on every query.
    _perf: object = field(
        default_factory=lambda: PERF.counters, repr=False, compare=False
    )
    #: Monotonic change counter: advances on every :meth:`record` (which
    #: covers eviction) and :meth:`forget_series`.  Array-backed views
    #: (:class:`repro.core.kernels.WorldArrays`) compare a remembered
    #: value against this to invalidate derived selectivity arrays.
    version: int = field(default=0, repr=False)
    #: Optional write-through mirror: an object with
    #: ``on_record(node_id, cid, round_index, predecessor, successor)``
    #: and ``on_forget(node_id, cid)``, notified *after* the indices and
    #: ``version`` are updated.  The sharded engine binds its
    #: shared-memory hit table here so cumulative per-(cid, edge) entry
    #: counts stay exactly equal to the ``bisect`` numerators without
    #: ever re-scanning the dict indices.  Mirrors assume append-only
    #: histories: binding one to a capacity-bounded profile is rejected
    #: at bind time (eviction would silently diverge the counts).
    sink: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {self.capacity}")
        # A profile constructed with pre-existing records (e.g. by a
        # deserialiser) must index them before the first query.
        if self._records and not self._edge_rounds:
            for bucket in self._records.values():
                for rec in bucket:
                    self._index_add(rec)

    # -- index maintenance ------------------------------------------------
    def _index_add(self, rec: HistoryRecord) -> None:
        edge = self._edge_rounds.setdefault(rec.cid, {})
        insort(edge.setdefault(rec.successor, []), rec.round_index)
        pos = self._pos_rounds.setdefault(rec.cid, {})
        insort(
            pos.setdefault((rec.predecessor, rec.successor), []), rec.round_index
        )

    def _index_remove(self, rec: HistoryRecord) -> None:
        """Remove one occurrence of ``rec`` from both indices.

        All entries in a round list are equal integers, so removing the
        element at ``bisect_left`` deletes exactly one matching occurrence.
        """
        edge = self._edge_rounds[rec.cid][rec.successor]
        del edge[bisect_left(edge, rec.round_index)]
        if not edge:
            del self._edge_rounds[rec.cid][rec.successor]
        pos = self._pos_rounds[rec.cid][(rec.predecessor, rec.successor)]
        del pos[bisect_left(pos, rec.round_index)]
        if not pos:
            del self._pos_rounds[rec.cid][(rec.predecessor, rec.successor)]

    def record(self, cid: int, round_index: int, predecessor: int, successor: int) -> None:
        """Store the hop taken through this node on round ``round_index``."""
        rec = HistoryRecord(cid, round_index, predecessor, successor)
        bucket = self._records.setdefault(cid, [])
        bucket.append(rec)
        self._index_add(rec)
        self.version += 1
        if self.sink is not None:
            self.sink.on_record(  # type: ignore[attr-defined]
                self.node_id, cid, round_index, predecessor, successor
            )
        if self.capacity is not None and len(bucket) > self.capacity:
            evicted = bucket[0 : len(bucket) - self.capacity]
            del bucket[0 : len(bucket) - self.capacity]
            for old in evicted:
                self._index_remove(old)

    def records_for(self, cid: int) -> List[HistoryRecord]:
        """All stored records for a series (oldest first)."""
        return list(self._records.get(cid, ()))

    def selectivity(
        self,
        cid: int,
        successor: int,
        round_index: int,
        predecessor: Optional[int] = None,
    ) -> float:
        """``sigma(s, v)`` for round ``round_index`` of series ``cid``.

        Ratio of matching history entries to the maximum possible
        ``round_index - 1``.  If ``predecessor`` is given, only entries with
        that predecessor match (position-aware scoring); otherwise all
        entries for the edge count.  Returns 0 on the first round.

        Answered from the sorted round index in O(log k); equivalent to
        :meth:`selectivity_naive` by construction (the indices mirror
        ``_records`` exactly).
        """
        if round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {round_index}")
        self._perf.selectivity_queries += 1
        max_entries = round_index - 1
        if max_entries == 0:
            return 0.0
        if predecessor is None:
            rounds = self._edge_rounds.get(cid, {}).get(successor)
        else:
            rounds = self._pos_rounds.get(cid, {}).get((predecessor, successor))
        if not rounds:
            return 0.0
        # Entries strictly before the current round (never peek ahead).
        hits = bisect_left(rounds, round_index)
        return min(1.0, hits / max_entries)

    def selectivity_hits_block(
        self,
        cid: int,
        successors: List[int],
        round_index: int,
    ) -> List[int]:
        """Matching-entry counts for a whole candidate block, one bisect
        per successor — the batched form of :meth:`selectivity`'s numerator
        (predecessor-unconditioned; :meth:`selectivity_hits_block_pos` is
        the position-aware counterpart).

        Returns raw hit counts (not ratios) so the caller can normalise
        the whole block in one vectorised division.  Counts only entries
        strictly before ``round_index``, exactly like :meth:`selectivity`.
        The result order matches ``successors``.  One counter bump covers
        the block (per-edge queries are what ``selectivity_queries``
        measures on the scalar path; the batched path reports through the
        kernel counters instead).
        """
        if round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {round_index}")
        edge = self._edge_rounds.get(cid)
        if not edge or round_index == 1:
            return [0] * len(successors)
        get = edge.get
        out = []
        for succ in successors:
            rounds = get(succ)
            out.append(bisect_left(rounds, round_index) if rounds else 0)
        return out

    def selectivity_hits_block_pos(
        self,
        cid: int,
        predecessor: int,
        successors: List[int],
        round_index: int,
    ) -> List[int]:
        """Position-aware counterpart of :meth:`selectivity_hits_block`:
        matching-entry counts conditioned on ``predecessor``, one bisect
        per successor over the ``(predecessor, successor)`` round index.

        Exactly the numerators :meth:`selectivity` computes with a
        ``predecessor`` argument — the batched (numpy) backend scores
        predecessor-differentiated columns from these, bit-identical to
        the scalar path.  Counts only entries strictly before
        ``round_index``; result order matches ``successors``.
        """
        if round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {round_index}")
        pos = self._pos_rounds.get(cid)
        if not pos or round_index == 1:
            return [0] * len(successors)
        get = pos.get
        out = []
        for succ in successors:
            rounds = get((predecessor, succ))
            out.append(bisect_left(rounds, round_index) if rounds else 0)
        return out

    def selectivity_naive(
        self,
        cid: int,
        successor: int,
        round_index: int,
        predecessor: Optional[int] = None,
    ) -> float:
        """Reference implementation: linear scan over the raw records.

        Kept as the executable specification for :meth:`selectivity`; the
        differential tests assert bit-identical results over randomized
        workloads (records, eviction, forgetting, position-aware queries).
        """
        if round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {round_index}")
        max_entries = round_index - 1
        if max_entries == 0:
            return 0.0
        hits = 0
        for rec in self._records.get(cid, ()):
            if rec.round_index >= round_index:
                continue  # never peek at the current/future rounds
            if rec.successor != successor:
                continue
            if predecessor is not None and rec.predecessor != predecessor:
                continue
            hits += 1
        return min(1.0, hits / max_entries)

    def known_successors(self, cid: int) -> List[int]:
        """Distinct successors seen for a series (sorted, deterministic)."""
        return sorted(self._edge_rounds.get(cid, {}))

    def series_count(self) -> int:
        """Number of distinct series this node has forwarded for."""
        return len(self._records)

    def total_records(self) -> int:
        return sum(len(v) for v in self._records.values())

    def forget_series(self, cid: int) -> None:
        """Drop all history for a completed series (storage reclamation)."""
        self._records.pop(cid, None)
        self._edge_rounds.pop(cid, None)
        self._pos_rounds.pop(cid, None)
        self.version += 1
        if self.sink is not None:
            self.sink.on_forget(self.node_id, cid)  # type: ignore[attr-defined]

    # -- attack surface (§5(3)) -----------------------------------------
    def observed_edges(self) -> List[Tuple[int, int, int]]:
        """(cid, predecessor, successor) tuples — what a *compromised* node
        leaks to an adversary analysing history profiles."""
        out = []
        for cid, bucket in self._records.items():
            for rec in bucket:
                out.append((cid, rec.predecessor, rec.successor))
        return out
