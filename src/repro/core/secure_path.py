"""Cryptographic route confirmation and verification (§2.2, §5).

The paper's protocol: "after R receives the payload, it sends back a
confirmation through the reverse path.  Each intermediate forwarder also
includes path information which is then used by I to recreate the path
and validate it."  The technical report's crypto details are unpublished;
this module implements the natural construction:

- the initiator attaches an **ephemeral public key** to the contract (a
  fresh key per series, so it identifies nothing);
- on the reverse path every forwarder appends a **sealed hop record**
  ``Enc_ephemeral(node, predecessor, successor, round)`` — only the
  initiator can open it, so forwarders learn nothing about the rest of
  the path beyond their own neighbours (which they already know);
- the initiator opens all records and **recreates the path** by chaining
  predecessor/successor links; any forged, duplicated, dropped or
  inconsistent record breaks the chain and fails validation — this is
  what makes inflated payment claims detectable (see
  :mod:`repro.payment.fraud`).

The sealing uses hybrid encryption built from this repo's own
primitives: RSA (shared with the bank's blind-signature keys) transports
a fresh session key; the payload is XORed with a SHA-256 keystream.
Textbook constructions — a simulation substrate, not production crypto.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.path import Path
from repro.payment.crypto import RSAKeyPair


def keystream_xor(key: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA-256 counter-mode keystream (symmetric)."""
    out = bytearray(len(data))
    counter = 0
    pos = 0
    while pos < len(data):
        block = hashlib.sha256(key + struct.pack(">Q", counter)).digest()
        n = min(len(block), len(data) - pos)
        for i in range(n):
            out[pos + i] = data[pos + i] ^ block[i]
        pos += n
        counter += 1
    return bytes(out)


@dataclass(frozen=True)
class SealedBox:
    """Hybrid ciphertext: RSA-wrapped session key + keystream ciphertext."""

    wrapped_key: int
    ciphertext: bytes


def seal(public: RSAKeyPair, plaintext: bytes, rng: np.random.Generator) -> SealedBox:
    """Encrypt so that only the holder of ``public``'s private exponent
    can read (the :class:`RSAKeyPair` carries both halves; sealing uses
    only ``n`` and ``e``)."""
    key_int = 0
    for _ in range(3):
        key_int = (key_int << 30) | int(rng.integers(0, 2**30))
    key_int = 2 + key_int % (public.n - 3)
    session_key = hashlib.sha256(key_int.to_bytes(32, "big")).digest()
    wrapped = pow(key_int, public.e, public.n)
    return SealedBox(wrapped_key=wrapped, ciphertext=keystream_xor(session_key, plaintext))


def unseal(private: RSAKeyPair, box: SealedBox) -> bytes:
    """Decrypt a :class:`SealedBox` with the private exponent."""
    key_int = pow(box.wrapped_key, private.d, private.n)
    session_key = hashlib.sha256(key_int.to_bytes(32, "big")).digest()
    return keystream_xor(session_key, box.ciphertext)


# ------------------------------------------------------------------ hop records
_RECORD = struct.Struct(">qqqq")  # node, predecessor, successor, round


def encode_hop_record(node: int, predecessor: int, successor: int, round_index: int) -> bytes:
    """Fixed-width binary encoding of one hop record."""
    return _RECORD.pack(node, predecessor, successor, round_index)


def decode_hop_record(blob: bytes) -> Tuple[int, int, int, int]:
    """Inverse of :func:`encode_hop_record`; rejects wrong-size blobs."""
    if len(blob) != _RECORD.size:
        raise ValueError(f"hop record must be {_RECORD.size} bytes, got {len(blob)}")
    return _RECORD.unpack(blob)


@dataclass
class RouteConfirmation:
    """The reverse-path confirmation accumulating sealed hop records."""

    cid: int
    round_index: int
    records: List[SealedBox]

    @classmethod
    def start(cls, cid: int, round_index: int) -> "RouteConfirmation":
        return cls(cid=cid, round_index=round_index, records=[])

    def append_hop(
        self,
        ephemeral_public: RSAKeyPair,
        node: int,
        predecessor: int,
        successor: int,
        rng: np.random.Generator,
    ) -> None:
        """Called by each forwarder on the reverse path."""
        blob = encode_hop_record(node, predecessor, successor, self.round_index)
        self.records.append(seal(ephemeral_public, blob, rng))


@dataclass(frozen=True)
class ValidationResult:
    valid: bool
    reason: str
    #: The recreated forwarder sequence (empty when invalid).
    forwarders: Tuple[int, ...] = ()


def validate_confirmation(
    ephemeral_private: RSAKeyPair,
    confirmation: RouteConfirmation,
    initiator: int,
    responder: int,
) -> ValidationResult:
    """Initiator-side path recreation and validation.

    Opens every sealed record, then chains them: the records must form a
    single path ``initiator -> f1 -> ... -> fm -> responder`` where each
    record's successor is the next record's node and each record's
    predecessor is the previous record's node.  Any decryption garbage,
    wrong round, break in the chain, or dangling record fails validation.
    """
    decoded = []
    for box in confirmation.records:
        try:
            rec = decode_hop_record(unseal(ephemeral_private, box))
        except (ValueError, OverflowError):
            return ValidationResult(False, "undecodable hop record")
        decoded.append(rec)
    if not decoded:
        return ValidationResult(False, "no hop records")
    for node, _pred, _succ, rnd in decoded:
        if rnd != confirmation.round_index:
            return ValidationResult(False, f"record for wrong round at node {node}")
    # Records arrive in reverse-path order (last forwarder first) or
    # forward order depending on implementation; normalise by chaining.
    by_node = {rec[0]: rec for rec in decoded}
    if len(by_node) != len(decoded):
        return ValidationResult(False, "duplicate hop record")
    # Find the first forwarder: predecessor == initiator.
    first = [r for r in decoded if r[1] == initiator]
    if len(first) != 1:
        return ValidationResult(False, "no unique first hop from initiator")
    chain = [first[0]]
    seen = {first[0][0]}
    while chain[-1][2] != responder:
        nxt = by_node.get(chain[-1][2])
        if nxt is None:
            return ValidationResult(False, f"chain breaks after node {chain[-1][0]}")
        if nxt[0] in seen:
            return ValidationResult(False, "cycle in hop records")
        if nxt[1] != chain[-1][0]:
            return ValidationResult(
                False, f"predecessor mismatch at node {nxt[0]}"
            )
        chain.append(nxt)
        seen.add(nxt[0])
    if len(chain) != len(decoded):
        return ValidationResult(False, "dangling hop records (inflation attempt)")
    return ValidationResult(True, "ok", forwarders=tuple(r[0] for r in chain))


def confirm_and_validate_path(
    path: Path,
    ephemeral: RSAKeyPair,
    rng: np.random.Generator,
) -> ValidationResult:
    """Convenience: run the full reverse-path confirmation for a
    :class:`repro.core.path.Path` and validate it (used by tests and the
    protocol example)."""
    confirmation = RouteConfirmation.start(path.cid, path.round_index)
    # Reverse path: last forwarder appends first.
    for predecessor, node, successor in reversed(path.hop_records()):
        confirmation.append_hop(ephemeral, node, predecessor, successor, rng)
    return validate_confirmation(
        ephemeral, confirmation, path.initiator, path.responder
    )
