"""Utility functions for forwarders and the initiator (§2.2, §2.4.2-3).

- **Utility Model I** (edge-local, eq. 1):
  ``U_i(j) = P_f + q(i, j) * P_r - (C_i^p + C^t(i, j))``
- **Utility Model II** (path-global):
  ``U_i(j) = P_f + q(pi(i, j, R)) * P_r - (C_i^p + C^t(i, j))``
  where ``q(pi(i, j, R))`` is the (normalised) quality of the best path
  from *i* through *j* to the responder.
- **Initiator utility** (eq. 2):
  ``U_I = A(||pi||) - ||pi|| * P_f - P_r``
  with ``A(.)`` a decreasing-in-``||pi||`` anonymity payoff.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.contracts import Contract


def forwarder_utility_model1(
    contract: Contract, edge_quality: float, cost: float
) -> float:
    """Eq. 1: ``P_f + q_e * P_r - C``.

    ``edge_quality`` must be in [0, 1]; ``cost`` is the combined
    participation + transmission cost of this decision.
    """
    if not 0.0 <= edge_quality <= 1.0:
        raise ValueError(f"edge quality out of [0,1]: {edge_quality}")
    if cost < 0:
        raise ValueError(f"negative cost {cost}")
    return contract.forwarding_benefit + edge_quality * contract.routing_benefit - cost


def forwarder_utility_model2(
    contract: Contract, path_quality: float, cost: float
) -> float:
    """Model II utility: ``P_f + q(pi(i,j,R)) * P_r - C``.

    ``path_quality`` is the *normalised* quality of the remaining path to
    the responder (mean per-edge quality, in [0, 1]) so that both models
    place ``P_r`` on the same scale.
    """
    if not 0.0 <= path_quality <= 1.0:
        raise ValueError(f"path quality out of [0,1]: {path_quality}")
    if cost < 0:
        raise ValueError(f"negative cost {cost}")
    return contract.forwarding_benefit + path_quality * contract.routing_benefit - cost


def anonymity_payoff(
    forwarder_set_size: int, scale: float = 1000.0, reference: int = 1
) -> float:
    """``A(||pi||)``: the initiator's anonymity benefit (§2.2, footnote 4).

    The paper only requires that ``A`` increase as ``||pi||`` decreases.
    We use ``scale / (||pi|| / reference)`` — hyperbolic decay, positive,
    strictly decreasing in the forwarder-set size.
    """
    if forwarder_set_size < 1:
        raise ValueError(f"forwarder set size must be >= 1, got {forwarder_set_size}")
    if scale <= 0 or reference < 1:
        raise ValueError("scale must be > 0 and reference >= 1")
    return scale * reference / forwarder_set_size


def initiator_utility(
    contract: Contract,
    forwarder_set_size: int,
    anonymity_scale: float = 1000.0,
) -> float:
    """Eq. 2: ``U_I = A(||pi||) - ||pi|| * P_f - P_r``.

    Note the paper charges ``P_f`` per *member of the forwarder set* in
    eq. 2 (an approximation of per-instance payment with one instance per
    forwarder); we follow the equation as printed.
    """
    a = anonymity_payoff(forwarder_set_size, scale=anonymity_scale)
    return (
        a
        - forwarder_set_size * contract.forwarding_benefit
        - contract.routing_benefit
    )


def entropy_anonymity_degree(probabilities: Sequence[float]) -> float:
    """Degree of anonymity: normalised Shannon entropy of suspicion.

    Standard Diaz/Serjantov metric used to quantify ``A(.)`` empirically:
    ``H(X) / log2(N)`` over the attacker's probability assignment to the
    candidate initiators.  1 = perfect anonymity, 0 = fully identified.
    """
    probs = [p for p in probabilities if p > 0]
    if not probs:
        raise ValueError("need at least one positive probability")
    total = sum(probs)
    if abs(total - 1.0) > 1e-6:
        probs = [p / total for p in probs]
    n = len(list(probabilities))
    if n <= 1:
        return 0.0
    h = -sum(p * math.log2(p) for p in probs)
    return h / math.log2(n)
