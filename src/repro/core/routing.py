"""Routing strategies: how a forwarder picks the next hop (§2.4).

Three strategies from the paper:

- :class:`RandomRouting` — uniform choice among live neighbours.  This is
  both the baseline and the adversary model ("we model an adversary's
  routing strategy as random routing").
- :class:`UtilityModelI` — greedy edge-local utility (eq. 1): evaluate
  ``U_i(j) = P_f + q(i,j) P_r - C`` for every live neighbour, pick the
  maximiser, break ties towards higher edge quality.  ``NULL`` (decline to
  participate) when the best utility is negative.
- :class:`UtilityModelII` — path-global utility (§2.4.3): score each
  neighbour by the quality of the best remaining path to the responder,
  computed by backward induction over a bounded-depth game tree.  The
  induction assumes downstream nodes also play their equilibrium
  (quality-maximising) strategy — the SPNE logic of the L-stage game.

Strategies never select the node itself (the strategy space is
``SS_i = V \\ {i} + NULL``) and avoid the immediate predecessor when an
alternative exists (a 2-cycle adds cost without progress).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.contracts import Contract
from repro.core.costs import CostModel
from repro.core.edge_quality import QualityWeights, edge_quality
from repro.core.history import HistoryProfile
from repro.core.kernels import (
    MODEL1_KERNEL_MIN_CANDIDATES,
    MODEL2_KERNEL_MIN_NODES,
    BatchPlanner,
    WorldArrays,
    validate_backend,
)
from repro.core.utility import forwarder_utility_model1, forwarder_utility_model2
from repro.network.node import PeerNode
from repro.network.overlay import Overlay
from repro.sim.monitoring import PERF


def _null_tracer() -> object:
    # Deferred: core stays loadable without the obs layer (ARCH001).  The
    # shared NULL_TRACER singleton is returned, so identity semantics are
    # unchanged from the old module-scope default.
    from repro.obs.tracing import NULL_TRACER

    return NULL_TRACER


@dataclass
class ForwardingContext:
    """Everything a routing decision may consult.

    The context is built once per connection round by the protocol layer
    and threaded through each hop's decision.

    The context also owns the round's **edge-quality cache**: within one
    round, ``q(s, v)`` is a pure function of the edge (plus the
    selectivity predecessor when position-aware scoring is on) — history
    records are only committed after the round's path succeeds, and probe
    counters only advance between rounds — so every hop and every
    backward-induction subtree of the round reuses one scored value per
    edge instead of recomputing it.
    """

    cid: int
    round_index: int
    contract: Contract
    responder: int
    overlay: Overlay
    cost_model: CostModel
    histories: Mapping[int, HistoryProfile]
    rng: np.random.Generator
    weights: QualityWeights = field(default_factory=QualityWeights)
    #: When True, selectivity only counts history entries with a matching
    #: predecessor (the §2.3 position-differentiation refinement).  Off by
    #: default: under churn the upstream prefix varies between rounds, and
    #: conditioning on it discards most reuse signal.
    position_aware_selectivity: bool = False
    #: Span tracer for decision-level timing (``spne.decide``).  Defaults
    #: to the shared no-op tracer, so uninstrumented constructors and the
    #: routing hot path pay only a no-op ``with`` block.
    tracer: object = field(default_factory=_null_tracer, repr=False)
    #: This thread's plain counter instance, bound once at construction.
    #: Hot methods increment through this (or a local alias) rather than
    #: the ``PERF`` facade, which pays thread-local indirection per access.
    perf: object = field(
        default_factory=lambda: PERF.counters, repr=False, compare=False
    )
    #: Per-round edge-quality memo keyed ``(node, neighbor, selectivity
    #: predecessor, round_index)``.  ``round_index`` is in the key so a
    #: context reused across rounds (tests mutate ``round_index`` in
    #: place) never serves a stale score.
    _edge_quality_cache: Dict[
        Tuple[int, int, Optional[int], int], float
    ] = field(default_factory=dict, repr=False)
    #: Per-round scored candidate lists keyed ``(node, predecessor,
    #: round_index)`` — the (neighbor, quality) pairs every utility
    #: strategy loops over.  Sound for the same reason as the quality
    #: cache: candidate sets (liveness) and scores are fixed within a
    #: round.  Cleared by :meth:`begin_attempt` when liveness changed
    #: mid-round (injected crash), so every formation attempt scores
    #: against a consistent liveness snapshot.
    _scored_candidates_cache: Dict[
        Tuple[int, Optional[int], int], List[Tuple[int, float]]
    ] = field(default_factory=dict, repr=False)
    #: Scoring backend: ``"python"`` (scalar reference) or ``"numpy"``
    #: (batched kernels, :mod:`repro.core.kernels`).  Both produce
    #: bit-identical decisions; the utility strategies dispatch on this.
    backend: str = "python"
    #: Small-world crossover: when True (the default), tiny decisions
    #: stay on the scalar loop even under ``backend="numpy"`` — the
    #: array bookkeeping costs more than it saves below the measured
    #: batch-size thresholds (see repro.core.kernels).  Both branches
    #: are bit-identical, so mixing them within one run is sound; tests
    #: pin this to False to force the kernels on small worlds.
    kernel_crossover: bool = True
    #: Shared array world for the numpy backend; the protocol layer
    #: passes one :class:`WorldArrays` across all rounds it builds so
    #: topology/availability arrays amortise.  Lazily created here when
    #: a bare context is used with ``backend="numpy"``.
    world: Optional[WorldArrays] = field(default=None, repr=False)
    #: Shared round-level batch planner (numpy backend); the protocol
    #: layer passes one :class:`BatchPlanner` across every round and
    #: connection it builds so quality rows batch across connections.
    #: Lazily created here when a bare context is used standalone.
    planner: Optional[BatchPlanner] = field(default=None, repr=False)
    #: Liveness snapshot marker for :meth:`begin_attempt`.
    _liveness_stamp: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        validate_backend(self.backend)

    def batch_planner(self) -> BatchPlanner:
        """The context's batch planner (numpy backend), lazily built."""
        planner = self.planner
        if planner is None:
            if self.world is None:
                self.world = WorldArrays(self.overlay)
            planner = BatchPlanner(self.world)
            self.planner = planner
        return planner

    def use_kernels(self) -> bool:
        """True when this context's backend is the batched numpy kernels
        (position-aware selectivity included — predecessor-conditioned
        scoring runs in state space; see repro.core.kernels)."""
        return self.backend == "numpy"

    def use_kernels_model1(self, node: PeerNode) -> bool:
        """Model I dispatch: kernels, unless the candidate set is too
        small to beat the scalar loop (the small-world crossover)."""
        return self.use_kernels() and (
            not self.kernel_crossover
            or len(node.neighbors) >= MODEL1_KERNEL_MIN_CANDIDATES
        )

    def use_kernels_model2(self) -> bool:
        """Model II dispatch: kernels, unless the overlay is too small —
        the SPNE tables batch over every directed edge, so the win
        scales with the population, not the local degree."""
        return self.use_kernels() and (
            not self.kernel_crossover
            or len(self.overlay.nodes) >= MODEL2_KERNEL_MIN_NODES
        )

    def begin_attempt(self) -> None:
        """Mark the start of one path-formation attempt.

        Snapshots ``Overlay.liveness_version``; if it moved since the
        previous attempt (a fault-injected crash took a forwarder
        offline mid-round), the liveness-dependent scored-candidate
        cache is dropped so this attempt scores against current
        membership.  The numpy kernels track the same version counter
        themselves, so both backends see identical snapshots.  No-op
        within fault-free rounds — cached state stays warm.
        """
        stamp = self.overlay.liveness_version
        if self._liveness_stamp is not None and stamp != self._liveness_stamp:
            self._scored_candidates_cache.clear()
        self._liveness_stamp = stamp

    def selectivity_predecessor(self, predecessor: Optional[int]) -> Optional[int]:
        return predecessor if self.position_aware_selectivity else None

    def edge_quality_for(
        self, node: PeerNode, neighbor: int, predecessor: Optional[int]
    ) -> float:
        """Cached ``q(node, neighbor)`` for this round (see class docstring).

        Equivalent to calling :func:`repro.core.edge_quality.edge_quality`
        directly; the availability component reads the node's cached
        normalisation vector, and the result is memoised for the rest of
        the round.
        """
        sel_pred = self.selectivity_predecessor(predecessor)
        key = (node.node_id, neighbor, sel_pred, self.round_index)
        cached = self._edge_quality_cache.get(key)
        perf = self.perf
        if cached is not None:
            perf.edge_quality_cache_hits += 1
            return cached
        perf.edge_quality_cache_misses += 1
        perf.edges_scored += 1
        q = edge_quality(
            node,
            neighbor,
            self.history_of(node.node_id),
            cid=self.cid,
            round_index=self.round_index,
            weights=self.weights,
            predecessor=sel_pred,
            responder=self.responder,
            availability=node.availability_vector().get(neighbor),
        )
        self._edge_quality_cache[key] = q
        return q

    def scored_candidates(
        self, node: PeerNode, predecessor: Optional[int]
    ) -> List[Tuple[int, float]]:
        """``[(neighbor, q(node, neighbor)), ...]`` for this round's
        candidate set — the inner loop of both utility models.

        Keyed on the *actual* predecessor (it shapes the candidate set via
        the no-backtracking rule and, under position-aware scoring, the
        selectivity conditioning).  Callers must not mutate the returned
        list.
        """
        key = (node.node_id, predecessor, self.round_index)
        hit = self._scored_candidates_cache.get(key)
        if hit is not None:
            return hit
        pairs = [
            (nbr, self.edge_quality_for(node, nbr, predecessor))
            for nbr in self.candidates(node, predecessor)
        ]
        self._scored_candidates_cache[key] = pairs
        return pairs

    def history_of(self, node_id: int) -> HistoryProfile:
        return self.histories[node_id]

    def live_neighbors(self, node: PeerNode) -> List[int]:
        """The node's currently-online neighbours (sorted: determinism)."""
        return sorted(
            nbr for nbr in node.neighbors if self.overlay.is_online(nbr)
        )

    def candidates(self, node: PeerNode, predecessor: Optional[int]) -> List[int]:
        """Next-hop candidates: live neighbours, no self, no responder,
        predecessor only as a last resort.

        The responder is excluded because *delivery* is governed by the
        termination policy (footnote 2: path length is controlled by the
        forwarding probability, not by routing); the quality-1 delivery
        edge is appended when the coin says "deliver".
        """
        live = [
            n
            for n in self.live_neighbors(node)
            if n != node.node_id and n != self.responder
        ]
        if predecessor is not None:
            without_pred = [n for n in live if n != predecessor]
            if without_pred:
                return without_pred
        return live


class RoutingStrategy(abc.ABC):
    """Interface: pick the next hop, or None to decline (NULL strategy)."""

    name: str = "abstract"

    @abc.abstractmethod
    def select_next_hop(
        self,
        node: PeerNode,
        predecessor: Optional[int],
        context: ForwardingContext,
    ) -> Optional[int]:
        """Return the chosen neighbour id, or None for non-participation."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomRouting(RoutingStrategy):
    """Uniform random next hop among candidates (baseline / adversary)."""

    name = "random"

    def select_next_hop(
        self,
        node: PeerNode,
        predecessor: Optional[int],
        context: ForwardingContext,
    ) -> Optional[int]:
        cands = context.candidates(node, predecessor)
        if not cands:
            return None
        # Responder reachable? In Crowds-style systems any node may submit
        # directly; the termination policy handles delivery.  Here we only
        # pick among overlay neighbours.
        return int(context.rng.choice(cands))


def _score_edges_model1(
    node: PeerNode,
    predecessor: Optional[int],
    context: ForwardingContext,
) -> List[Tuple[float, float, int]]:
    """(utility, quality, neighbor) triples for every candidate, eq. 1."""
    out = []
    perf = context.perf
    for nbr, q in context.scored_candidates(node, predecessor):
        cost = context.cost_model.decision_cost(
            node.participation_cost, node.node_id, nbr, context.contract.payload_size
        )
        u = forwarder_utility_model1(context.contract, q, cost)
        perf.utility_evaluations += 1
        out.append((u, q, nbr))
    return out


def _argmax_with_quality_tiebreak(
    scored: List[Tuple[float, float, int]]
) -> Optional[Tuple[float, float, int]]:
    """Max by utility; ties resolved towards higher quality, then lower id
    (the paper specifies the quality tie-break; the id tie-break makes runs
    reproducible)."""
    if not scored:
        return None
    return max(scored, key=lambda t: (t[0], t[1], -t[2]))


class UtilityModelI(RoutingStrategy):
    """Greedy edge-quality utility maximiser (eq. 1).

    Sorting the d candidate utilities is the paper's O(log d)-per-decision
    mechanism; we take the argmax directly (same choice, O(d)).
    """

    name = "utility-I"

    #: Decline to forward when the best utility falls below this (the paper
    #: uses 0: a rational node never pays to participate).
    participation_threshold: float = 0.0

    def select_next_hop(
        self,
        node: PeerNode,
        predecessor: Optional[int],
        context: ForwardingContext,
    ) -> Optional[int]:
        if context.use_kernels_model1(node):
            return context.batch_planner().decide_model1(
                self, node, predecessor, context
            )
        best = _argmax_with_quality_tiebreak(
            _score_edges_model1(node, predecessor, context)
        )
        if best is None or best[0] < self.participation_threshold:
            return None
        return best[2]


class UtilityModelII(RoutingStrategy):
    """Path-global utility via bounded backward induction (§2.4.3).

    The quality of ``pi(i, j, R)`` is estimated as the *mean edge quality*
    of the best path ``i -> j -> ... -> R`` found by recursing up to
    ``lookahead`` edges past ``j``, assuming each downstream node picks its
    own quality-maximising successor (subgame-perfect play).  Mean (not
    sum) keeps the score in [0, 1] so ``P_r`` weighs both models equally.

    **Shared SPNE memo.**  One decision expands overlapping subtrees: the
    candidates of a node largely share their downstream neighbourhoods.
    ``select_next_hop`` therefore builds a single memo for the whole
    candidate set, keyed ``(node, predecessor, depth)``, turning the
    per-decision cost from O(d * b^L) tree expansions into one memoised
    pass over the reachable subgraph.  The predecessor is part of the key
    because it shapes the candidate set (a node avoids routing back to
    whoever handed it the payload when an alternative exists), which
    makes the memoised recursion *exactly* equivalent to the pure,
    memo-free backward induction — the differential tests assert this.
    """

    name = "utility-II"
    participation_threshold: float = 0.0

    def __init__(self, lookahead: int = 2) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.lookahead = lookahead

    def __repr__(self) -> str:
        return f"UtilityModelII(lookahead={self.lookahead})"

    def _best_downstream(
        self,
        node_id: int,
        predecessor: Optional[int],
        depth: int,
        context: ForwardingContext,
        memo: Dict[Tuple[int, Optional[int], int], Tuple[float, int]],
    ) -> Tuple[float, int]:
        """Best (sum_quality, n_edges) of a path from ``node_id`` to the
        responder using at most ``depth`` edges.  (0.0, 0) if no progress
        is possible.

        ``memo`` is shared across the whole candidate set of one decision;
        the ``(node_id, predecessor, depth)`` key makes the memoised value
        independent of expansion order (see the class docstring).
        """
        if depth == 0:
            return (0.0, 0)
        key = (node_id, predecessor, depth)
        hit = memo.get(key)
        if hit is not None:
            context.perf.spne_memo_hits += 1
            return hit
        context.perf.spne_memo_misses += 1
        node = context.overlay.nodes[node_id]
        best_sum, best_n = 0.0, 0
        best_mean = -1.0
        for nbr, q in context.scored_candidates(node, predecessor):
            tail_sum, tail_n = self._best_downstream(
                nbr, node_id, depth - 1, context, memo
            )
            total_sum, total_n = q + tail_sum, 1 + tail_n
            mean = total_sum / total_n
            if mean > best_mean:
                best_mean, best_sum, best_n = mean, total_sum, total_n
        memo[key] = (best_sum, best_n)
        return memo[key]

    def path_quality_through(
        self,
        node: PeerNode,
        neighbor: int,
        predecessor: Optional[int],
        context: ForwardingContext,
        memo: Optional[Dict[Tuple[int, Optional[int], int], Tuple[float, int]]] = None,
    ) -> float:
        """Normalised quality of the best path node -> neighbor -> ... -> R.

        The terminal delivery edge into R always has quality 1 (§2.3), so
        it is appended to every candidate's path before normalising.

        ``memo`` lets :meth:`select_next_hop` share one backward-induction
        table across its whole candidate loop; a standalone call gets a
        private (equivalent) one.
        """
        q_first = context.edge_quality_for(node, neighbor, predecessor)
        if memo is None:
            memo = {}
        tail_sum, tail_n = self._best_downstream(
            neighbor, node.node_id, self.lookahead, context, memo
        )
        return (q_first + tail_sum + 1.0) / (1 + tail_n + 1)

    def select_next_hop(
        self,
        node: PeerNode,
        predecessor: Optional[int],
        context: ForwardingContext,
    ) -> Optional[int]:
        # One shared SPNE memo for the entire candidate set: overlapping
        # downstream subtrees are expanded exactly once per decision.
        with context.tracer.span("spne.decide"):
            if context.use_kernels_model2():
                return context.batch_planner().decide_model2(
                    self, node, predecessor, context
                )
            memo: Dict[Tuple[int, Optional[int], int], Tuple[float, int]] = {}
            scored: List[Tuple[float, float, int]] = []
            perf = context.perf
            for nbr, _q in context.scored_candidates(node, predecessor):
                pq = self.path_quality_through(node, nbr, predecessor, context, memo=memo)
                cost = context.cost_model.decision_cost(
                    node.participation_cost,
                    node.node_id,
                    nbr,
                    context.contract.payload_size,
                )
                u = forwarder_utility_model2(context.contract, pq, cost)
                perf.utility_evaluations += 1
                scored.append((u, pq, nbr))
            best = _argmax_with_quality_tiebreak(scored)
            if best is None or best[0] < self.participation_threshold:
                return None
            return best[2]


def strategy_by_name(name: str, **kwargs: Any) -> RoutingStrategy:
    """Factory used by configs: 'random' | 'utility-I' | 'utility-II'."""
    table = {
        "random": RandomRouting,
        "utility-I": UtilityModelI,
        "utility-II": UtilityModelII,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(table)}"
        ) from None
    return cls(**kwargs)
