"""Reputation-based routing: the related-work baseline (§4).

The paper argues against reputation/scoring schemes for anonymity
forwarding ([9], [10]) on two grounds:

1. "schemes based on system wide monitoring are not ideally suited for
   anonymity systems", and
2. "an inherent problem with a scoring or reputation mechanism is that
   nodes can collude with each other to increase their score ... and
   therefore increase their probability of being selected in the
   forwarding path."

To make that comparison executable we implement the strongest reasonable
baseline: a feedback-based reputation system where each completed round
credits the forwarders that served on it and each failed round debits the
nodes suspected of dropping it, with Bayesian (beta) smoothing.  A
:class:`ReputationRouting` strategy then selects the highest-reputation
neighbour.

The collusion attack of the paper's critique is
:func:`inject_collusion_feedback`: a coalition floods the system with
fake positive feedback about its members, inflating their scores and
pulling honest traffic through colluders — exactly the failure mode the
incentive mechanism avoids (payments are bound to initiator-validated
paths, not to peer testimony).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.path import Path
from repro.core.routing import ForwardingContext, RoutingStrategy
from repro.network.node import PeerNode


@dataclass
class ReputationSystem:
    """Global feedback store (the 'system-wide monitoring' the paper
    distrusts).

    Reputation of node ``v`` is the beta-smoothed success rate
    ``(positive + 1) / (positive + negative + 2)`` over all received
    feedback, in (0, 1).
    """

    positive: Dict[int, float] = field(default_factory=dict)
    negative: Dict[int, float] = field(default_factory=dict)

    def record_success(self, node_id: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"negative feedback weight {weight}")
        self.positive[node_id] = self.positive.get(node_id, 0.0) + weight

    def record_failure(self, node_id: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"negative feedback weight {weight}")
        self.negative[node_id] = self.negative.get(node_id, 0.0) + weight

    def reputation(self, node_id: int) -> float:
        p = self.positive.get(node_id, 0.0)
        n = self.negative.get(node_id, 0.0)
        return (p + 1.0) / (p + n + 2.0)

    def ingest_round(self, path: Optional[Path], suspects: Iterable[int] = ()) -> None:
        """Feedback for one round: credit the forwarders of a completed
        path; debit the suspects of a failed one."""
        if path is not None:
            for node_id, instances in path.forwarding_instances().items():
                self.record_success(node_id, weight=float(instances))
        for node_id in suspects:
            self.record_failure(node_id)

    def top_nodes(self, k: int) -> List[Tuple[int, float]]:
        """The k highest-reputation nodes (id, score), deterministic order."""
        scored = sorted(
            {(n, self.reputation(n)) for n in set(self.positive) | set(self.negative)},
            key=lambda t: (-t[1], t[0]),
        )
        return scored[:k]


@dataclass
class ReputationRouting(RoutingStrategy):
    """Pick the live neighbour with the highest reputation.

    This is the paper's related-work strawman implemented honestly: it
    routes towards nodes the *system* believes are reliable, with no
    contract/payment binding.  Ties break towards the smaller id.
    """

    system: ReputationSystem
    name: str = "reputation"

    def select_next_hop(
        self,
        node: PeerNode,
        predecessor: Optional[int],
        context: ForwardingContext,
    ) -> Optional[int]:
        cands = context.candidates(node, predecessor)
        if not cands:
            return None
        return min(cands, key=lambda n: (-self.system.reputation(n), n))


def inject_collusion_feedback(
    system: ReputationSystem, coalition: Iterable[int], rounds: int, weight: float = 1.0
) -> None:
    """The §4 collusion attack: coalition members vouch for each other.

    Each colluder submits ``rounds`` fake positive reports for every
    other coalition member.  Because the reputation store cannot verify
    that the claimed forwarding ever happened (feedback is testimony, not
    validated paths), the colluders' scores rise without them serving a
    single honest connection.
    """
    members = list(coalition)
    if rounds < 0:
        raise ValueError(f"negative rounds {rounds}")
    for reporter in members:
        for subject in members:
            if reporter == subject:
                continue
            system.record_success(subject, weight=weight * rounds)


def collusion_capture_rate(
    system: ReputationSystem, coalition: Iterable[int], candidate_pool: Iterable[int]
) -> float:
    """Fraction of the top-|coalition| reputation slots held by colluders —
    a proxy for how much traffic reputation routing would hand them."""
    members = set(coalition)
    pool = set(candidate_pool) | members
    k = len(members)
    if k == 0:
        raise ValueError("empty coalition")
    ranked = sorted(pool, key=lambda n: (-system.reputation(n), n))[:k]
    return len(members & set(ranked)) / k
