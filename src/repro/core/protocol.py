"""Path establishment protocol (§2.2).

The initiator does not know the forwarders (only its first hop), so a path
is formed by *contract propagation*: each node receives the contract
``(P_f, P_r)`` with the payload, makes its participation/routing decision,
and passes the contract on.  After the responder receives the payload, a
confirmation travels the reverse path, each forwarder appending its path
information, which the initiator uses to recreate and validate the path.

Termination follows the paper's note that "both Crowds like probabilistic
forwarding and hop-distance based forwarding are applicable":

- ``TerminationPolicy.crowds(p_f)``: after each forwarder, the payload is
  forwarded with probability ``p_f`` and delivered to the responder with
  probability ``1 - p_f`` (geometric path lengths, mean ``1/(1-p_f)``);
- ``TerminationPolicy.hop_ttl(L)``: deliver after exactly ``L`` forwarders.

A node may also deliver implicitly by *selecting the responder* as its
next hop when the responder is one of its neighbours (that edge has
quality 1 and is therefore highly attractive under the utility models).

A dead end (the current node declines or has no live neighbour) tears the
partial path down and the initiator re-forms from scratch — one **path
reformation**.  After ``max_attempts`` reformations the round fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.contracts import Contract
from repro.core.costs import CostModel
from repro.core.edge_quality import QualityWeights
from repro.core.history import HistoryProfile
from repro.core.kernels import (
    BatchPlanner,
    WorldArrays,
    default_backend,
    validate_backend,
)
from repro.core.path import Path, PathFailure, SeriesLog
from repro.core.routing import (
    ForwardingContext,
    RandomRouting,
    RoutingStrategy,
    _null_tracer,
)
from repro.network.overlay import Overlay
from repro.sim.faults import FaultInjector, FaultPlan, RetryPolicy

if TYPE_CHECKING:  # lazy: core stays loadable without the obs layer (ARCH001)
    from repro.obs.events import EventBus


@dataclass(frozen=True)
class TerminationPolicy:
    """When a forwarder delivers to the responder instead of forwarding."""

    kind: str
    forward_probability: float = 0.0
    ttl: int = 0

    @classmethod
    def crowds(cls, forward_probability: float = 0.66) -> "TerminationPolicy":
        """Crowds-style coin flip with forwarding probability ``p_f``."""
        if not 0.0 <= forward_probability < 1.0:
            raise ValueError(
                f"forward probability must be in [0, 1), got {forward_probability}"
            )
        return cls(kind="crowds", forward_probability=forward_probability)

    @classmethod
    def hop_ttl(cls, ttl: int) -> "TerminationPolicy":
        """Deliver after exactly ``ttl`` forwarders."""
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        return cls(kind="ttl", ttl=ttl)

    def should_deliver(self, forwarders_so_far: int, rng: np.random.Generator) -> bool:
        """Decide delivery given ``forwarders_so_far`` already on the path.

        Called when a forwarder is about to route; at least one forwarder
        is always used (the initiator never contacts R directly, or there
        would be no anonymity).
        """
        if forwarders_so_far < 1:
            return False
        if self.kind == "crowds":
            return bool(rng.random() >= self.forward_probability)
        if self.kind == "ttl":
            return forwarders_so_far >= self.ttl
        raise ValueError(f"unknown termination kind {self.kind!r}")

    def expected_length(self) -> float:
        """Expected number of forwarders per path."""
        if self.kind == "crowds":
            return 1.0 / (1.0 - self.forward_probability)
        return float(self.ttl)


@dataclass
class HopEvent:
    """One forwarding instance, for cost accounting and traffic analysis."""

    cid: int
    round_index: int
    sender: int
    receiver: int


@dataclass
class PathBuilder:
    """Builds paths hop-by-hop under the configured strategies.

    ``good_strategy`` drives non-malicious nodes; malicious nodes always
    use ``adversary_strategy`` (random routing per §2.4 — an adversary's
    objective is de-anonymisation, not income).
    """

    overlay: Overlay
    cost_model: CostModel
    histories: Mapping[int, HistoryProfile]
    rng: np.random.Generator
    good_strategy: RoutingStrategy
    adversary_strategy: RoutingStrategy = field(default_factory=RandomRouting)
    termination: TerminationPolicy = field(
        default_factory=lambda: TerminationPolicy.crowds(0.66)
    )
    weights: QualityWeights = field(default_factory=QualityWeights)
    max_path_length: int = 30
    max_attempts: int = 10
    #: Per-hop message-loss probability.  Thin compatibility alias for the
    #: unified injector: when no ``fault_injector`` is supplied, a nonzero
    #: value builds a single-channel :class:`FaultPlan` drawing from the
    #: builder's own ``rng`` (bit-identical to the legacy inline draw).
    loss_probability: float = 0.0
    #: Unified fault source (repro.sim.faults): per-hop message loss and
    #: mid-round forwarder crashes both tear the partial path down,
    #: forcing a reformation; crashes additionally report the victim
    #: through the injector's ``on_crash`` callback.
    fault_injector: Optional[FaultInjector] = None
    #: Optional guard-node defence: when set, the initiator's first hop is
    #: the pinned guard (see repro.core.defenses.GuardRegistry).
    guard_registry: Optional[object] = None
    #: Optional sink for per-hop events (traffic analysis, cost accounting).
    hop_listener: Optional[Callable[[HopEvent], None]] = None
    #: Optional structured event bus: ``path.form`` / ``path.reform`` /
    #: ``path.fail`` per round.  Events carry the *wire* cid the builder
    #: was called with (what an on-path observer sees under cid rotation).
    bus: Optional["EventBus"] = field(default=None, repr=False)
    #: Span tracer for ``path.build`` (one span per round built); shared
    #: with every :class:`ForwardingContext` the builder creates.
    tracer: object = field(default_factory=_null_tracer, repr=False)
    #: Scoring backend for the contexts this builder creates: ``None``
    #: resolves :func:`repro.core.kernels.default_backend` (the
    #: ``REPRO_BACKEND`` environment variable, defaulting to the scalar
    #: reference), or pass ``"python"``/``"numpy"`` explicitly.
    backend: Optional[str] = None
    #: Small-world crossover for the numpy backend (see
    #: :class:`ForwardingContext.kernel_crossover`); tests pin this to
    #: False to force the kernels on small worlds.
    kernel_crossover: bool = True
    #: Position-aware selectivity (§2.3 predecessor differentiation) for
    #: every context this builder creates — both backends support it.
    position_aware: bool = False
    #: Cumulative reformation count across all rounds built.
    reformations: int = 0
    #: Hops lost to failure injection.
    hops_lost: int = 0
    #: Shared :class:`WorldArrays` for the numpy backend, created on the
    #: first round built so topology/availability arrays amortise across
    #: every round and series this builder serves.
    _world: Optional[WorldArrays] = field(default=None, repr=False, compare=False)
    #: Shared :class:`BatchPlanner` over ``_world``: one frontier per
    #: connection, so concurrent series' quality rows are scored in one
    #: stacked kernel call (see :meth:`BatchPlanner.prepare`).
    _planner: Optional[BatchPlanner] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if self.fault_injector is None and self.loss_probability > 0.0:
            self.fault_injector = FaultInjector(
                plan=FaultPlan(hop_loss=self.loss_probability), rng=self.rng
            )
        self.backend = (
            default_backend() if self.backend is None else validate_backend(self.backend)
        )

    def _strategy_for(self, node_id: int) -> RoutingStrategy:
        node = self.overlay.nodes[node_id]
        return self.adversary_strategy if node.malicious else self.good_strategy

    def _context(self, cid: int, round_index: int, contract: Contract, responder: int) -> ForwardingContext:
        world = None
        planner = None
        if self.backend == "numpy":
            if self._world is None:
                self._world = WorldArrays(self.overlay)
                self._planner = BatchPlanner(self._world)
            world = self._world
            planner = self._planner
        return ForwardingContext(
            cid=cid,
            round_index=round_index,
            contract=contract,
            responder=responder,
            overlay=self.overlay,
            cost_model=self.cost_model,
            histories=self.histories,
            rng=self.rng,
            weights=self.weights,
            position_aware_selectivity=self.position_aware,
            tracer=self.tracer,
            backend=self.backend,
            kernel_crossover=self.kernel_crossover,
            world=world,
            planner=planner,
        )

    def build_round(
        self,
        cid: int,
        round_index: int,
        initiator: int,
        responder: int,
        contract: Contract,
    ) -> Path:
        """Establish the path for one round; raises :class:`PathFailure`
        after ``max_attempts`` reformations."""
        if not self.overlay.is_online(initiator):
            if self.bus is not None:
                self.bus.emit(
                    "path.fail",
                    cid=cid,
                    round_index=round_index,
                    node=initiator,
                    reason="initiator offline",
                    reformations=0,
                )
            raise PathFailure("initiator offline", reformations=0)
        with self.tracer.span("path.build"):
            context = self._context(cid, round_index, contract, responder)
            attempts = 0
            local_reformations = 0
            while attempts < self.max_attempts:
                attempts += 1
                forwarders = self._attempt(context, initiator, responder)
                if forwarders is not None:
                    path = Path(
                        cid=cid,
                        round_index=round_index,
                        initiator=initiator,
                        responder=responder,
                        forwarders=tuple(forwarders),
                    )
                    self._commit(path)
                    if self._planner is not None:
                        # Announce the next round now that its history is
                        # final: another connection's decision can score
                        # this one's quality row inside its own batch.
                        self._planner.prepare(cid, round_index + 1, responder)
                    if self.bus is not None:
                        self.bus.emit(
                            "path.form",
                            cid=cid,
                            round_index=round_index,
                            node=initiator,
                            n_forwarders=len(forwarders),
                            reformations=local_reformations,
                        )
                    return path
                local_reformations += 1
                self.reformations += 1
                if self.fault_injector is not None:
                    self.fault_injector.stats.reformations += 1
                if self.bus is not None:
                    self.bus.emit(
                        "path.reform",
                        cid=cid,
                        round_index=round_index,
                        node=initiator,
                        attempt=attempts,
                    )
        if self.bus is not None:
            self.bus.emit(
                "path.fail",
                cid=cid,
                round_index=round_index,
                node=initiator,
                reason="attempts exhausted",
                reformations=local_reformations,
            )
        # The failure carries the reformation count accumulated over *all*
        # attempts of this round, not just the final attempt.
        raise PathFailure(
            f"no path after {attempts} attempts", reformations=local_reformations
        )

    def build_round_with_retry(
        self,
        cid: int,
        round_index: int,
        initiator: int,
        responder: int,
        contract: Contract,
        retry: RetryPolicy,
        retry_rng: Optional[np.random.Generator] = None,
    ) -> Path:
        """Recovery wrapper: re-run :meth:`build_round` per ``retry``.

        On final exhaustion the raised :class:`PathFailure` carries the
        reformation count **accumulated across every retried build**, not
        the count from the last attempt only — the recovery layer must
        not under-report how much work the failure consumed.  (Backoff
        delays are ignored here; the simulation-time variant lives in the
        scenario's pair process, where a clock exists.)
        """
        total_reformations = 0
        last: Optional[PathFailure] = None
        for attempt in range(retry.max_retries + 1):
            try:
                path = self.build_round(cid, round_index, initiator, responder, contract)
            except PathFailure as exc:
                total_reformations += exc.reformations
                last = exc
                if attempt < retry.max_retries and self.fault_injector is not None:
                    self.fault_injector.stats.path_retries += 1
                continue
            return path
        assert last is not None
        raise PathFailure(
            f"{last.reason} (after {retry.max_retries} retries)",
            reformations=total_reformations,
        )

    def _attempt(
        self, context: ForwardingContext, initiator: int, responder: int
    ) -> Optional[List[int]]:
        """One end-to-end formation attempt; None on dead end."""
        # Snapshot liveness for this attempt: a crash injected during a
        # previous attempt of the same round must not leave stale
        # candidates in the context caches (both backends key off the
        # same overlay version counter — see ForwardingContext).
        context.begin_attempt()
        current = initiator
        predecessor: Optional[int] = None
        forwarders: List[int] = []
        while True:
            if len(forwarders) >= self.max_path_length:
                # Runaway path (possible under adversarial random routing):
                # force delivery rather than loop forever.
                self._emit_hop(context, current, responder)
                return forwarders
            # should_deliver() is False while no forwarder is on the path
            # yet, so the initiator's own first decision never delivers.
            # Note the check must NOT be skipped when `current` happens to
            # be the initiator re-appearing as a mid-path forwarder.
            if self.termination.should_deliver(len(forwarders), self.rng):
                self._emit_hop(context, current, responder)
                return forwarders
            node = self.overlay.nodes[current]
            nxt: Optional[int] = None
            if current == initiator and self.guard_registry is not None:
                nxt = self.guard_registry.live_guard(
                    initiator, exclude=(responder,)
                )
            if nxt is None:
                strategy = self._strategy_for(current)
                nxt = strategy.select_next_hop(node, predecessor, context)
            if nxt is None:
                return None  # dead end -> reformation
            if self.fault_injector is not None:
                if self.fault_injector.lose_hop():
                    self.hops_lost += 1
                    return None  # message lost in transit -> reformation
                if self.fault_injector.crash_forwarder(nxt):
                    return None  # selected forwarder crashed -> reformation
            self._emit_hop(context, current, nxt)
            forwarders.append(nxt)
            predecessor, current = current, nxt

    def _emit_hop(self, context: ForwardingContext, sender: int, receiver: int) -> None:
        if self.hop_listener is not None:
            self.hop_listener(
                HopEvent(
                    cid=context.cid,
                    round_index=context.round_index,
                    sender=sender,
                    receiver=receiver,
                )
            )

    def _commit(self, path: Path) -> None:
        """Reverse-path confirmation: each forwarder stores its hop record
        (Table 1) so future rounds can compute selectivity."""
        for predecessor, node_id, successor in path.hop_records():
            self.histories[node_id].record(
                cid=path.cid,
                round_index=path.round_index,
                predecessor=predecessor,
                successor=successor,
            )

    def validate(self, path: Path, reported_forwarders: Tuple[int, ...]) -> bool:
        """Initiator-side path validation: the recreated path from the
        confirmation must match what was reported.  Used by the fraud tests
        (a cheater inflating its instance count fails validation)."""
        return tuple(path.forwarders) == tuple(reported_forwarders)


@dataclass
class ConnectionSeries:
    """Drives the k recurring connections of one (I, R) pair (§2.1)."""

    cid: int
    initiator: int
    responder: int
    contract: Contract
    builder: PathBuilder
    #: Optional cid-rotation defence (repro.core.defenses.CidRotator):
    #: rounds are built under rotating wire cids, so captured history
    #: profiles link at most one epoch; the series log keeps true ids.
    cid_rotator: Optional[object] = None
    log: SeriesLog = field(init=False)
    _round: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.log = SeriesLog(
            cid=self.cid, initiator=self.initiator, responder=self.responder
        )

    @property
    def rounds_attempted(self) -> int:
        return self._round

    def run_round(self) -> Optional[Path]:
        """Attempt the next recurring connection; None if it failed."""
        self._round += 1
        wire_cid, wire_round = self.cid, self._round
        if self.cid_rotator is not None:
            wire_cid = self.cid_rotator.wire_cid(self._round)
            wire_round = self.cid_rotator.epoch_round(self._round)
        try:
            path = self.builder.build_round(
                cid=wire_cid,
                round_index=wire_round,
                initiator=self.initiator,
                responder=self.responder,
                contract=self.contract,
            )
        except PathFailure as exc:
            self.log.failed_rounds += 1
            self.log.reformations += exc.reformations
            return None
        if wire_cid != self.cid or wire_round != self._round:
            # Bookkeeping path under the series' true identifiers.
            path = Path(
                cid=self.cid,
                round_index=self._round,
                initiator=path.initiator,
                responder=path.responder,
                forwarders=path.forwarders,
            )
        self.log.add(path)
        return path

    def retry_round(self) -> Optional[Path]:
        """Re-attempt the current (failed) round — the recovery layer's
        entry point after a backoff delay.

        A success *converts* the earlier failure: ``failed_rounds`` is
        decremented and the path is logged under the same round index.
        Reformations accumulated by the failed builds are retained (they
        happened; recovery does not erase degradation).
        """
        if self._round == 0:
            raise ValueError("no round attempted yet; call run_round first")
        if self.log.paths and self.log.paths[-1].round_index == self._round:
            raise ValueError(f"round {self._round} already succeeded")
        wire_cid, wire_round = self.cid, self._round
        if self.cid_rotator is not None:
            wire_cid = self.cid_rotator.wire_cid(self._round)
            wire_round = self.cid_rotator.epoch_round(self._round)
        try:
            path = self.builder.build_round(
                cid=wire_cid,
                round_index=wire_round,
                initiator=self.initiator,
                responder=self.responder,
                contract=self.contract,
            )
        except PathFailure as exc:
            self.log.reformations += exc.reformations
            return None
        if wire_cid != self.cid or wire_round != self._round:
            path = Path(
                cid=self.cid,
                round_index=self._round,
                initiator=path.initiator,
                responder=path.responder,
                forwarders=path.forwarders,
            )
        self.log.failed_rounds = max(0, self.log.failed_rounds - 1)
        self.log.add(path)
        return path

    def run(self, rounds: int) -> SeriesLog:
        """Run ``rounds`` recurring connections back-to-back."""
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        for _ in range(rounds):
            self.run_round()
        return self.log

    def settlement(self) -> Dict[int, float]:
        """What the initiator owes each forwarder at series end:
        ``m_x * P_f + P_r / ||pi||`` (§2.2).  Empty if no round completed.

        Amounts are computed in one vectorised expression over the
        union set.  ``int64 * float64 + float64`` rounds identically to
        the scalar per-member arithmetic, and the result dict preserves
        the union set's iteration order — downstream float
        accumulations (escrow budgets, payoff means) see the exact
        sequence the per-member loop produced.
        """
        union = self.log.union_forwarder_set()
        if not union:
            return {}
        share = self.contract.routing_benefit / len(union)
        instances = self.log.total_instances()
        ids = list(union)
        counts = np.fromiter(
            (instances.get(x, 0) for x in ids), dtype=np.int64, count=len(ids)
        )
        amounts = counts * self.contract.forwarding_benefit + share
        return dict(zip(ids, amounts.tolist()))
